//! Experiment E-L3 — Lemma 3 (BFS layer structure of `G(n, p)`).
//!
//! Claim: for a random graph `G(n, p)` with `d = pn`, the BFS layers
//! `T_i(u)` (a) grow geometrically like `d^i` until they reach size
//! `Θ(n/d)`, and (b) are *near-trees* away from the last layers: the
//! fraction of `T_i` with more than one parent in `T_{i−1}` is `O(1/d²)`,
//! intra-layer edges are `O(|T_i|/d³)` per node, and single-parent nodes
//! group under shared parents with `O(d)` children each.
//!
//! Method: sample `G(n, p)` for several densities, compute the layering from
//! a random source, and tabulate per-layer measurements against the lemma's
//! bounds.  Averages are over multiple graph samples.

use radio_analysis::{fnum, fsci, CsvWriter, Table};
use radio_graph::layers::analyze_layers;
use radio_graph::{Layering, NodeId, Xoshiro256pp};
use radio_sim::Json;

use crate::common::{point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{BenchPoint, BenchReport};

/// Lemma 3: BFS layer structure.
pub struct L3;

impl Experiment for L3 {
    fn name(&self) -> &'static str {
        "l3"
    }
    fn banner_id(&self) -> &'static str {
        "E-L3"
    }
    fn claim(&self) -> &'static str {
        "BFS layers grow like d^i and are near-trees (Lemma 3)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "100000"), ("degrees", "3"), ("samples", "5")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(20_000, 100_000, 400_000));
        // Degrees pinned to multiples of ln n so every setting sits above the
        // connectivity threshold regardless of scale.
        let ln_n = (n as f64).ln();
        let degrees = [1.5 * ln_n, 4.0 * ln_n, 12.0 * ln_n];
        let samples = args.trials_or(args.scale(2, 5, 10));

        let mut csv = CsvWriter::new(&[
            "d",
            "layer",
            "size",
            "predicted_d_pow_i",
            "multi_parent_frac",
            "bound_1_over_d2",
            "intra_edges_per_node",
            "max_children",
        ]);

        for &d in &degrees {
            let p = d / n as f64;
            outln!(
                ctx,
                "## n = {n}, target d = {d:.1} ({:.1}·ln n)\n",
                d / ln_n
            );
            let mut table = Table::new(vec![
                "layer",
                "size(avg)",
                "d^i",
                "size/d^i",
                "multi-parent frac",
                "1/d²",
                "intra-edges/node",
                "max children",
            ]);

            // Accumulate per-layer stats over samples.
            let max_layers = 40usize;
            let mut acc: Vec<(f64, f64, f64, f64, usize)> =
                vec![(0.0, 0.0, 0.0, 0.0, 0); max_layers];
            let mut counts = vec![0usize; max_layers];
            for s in 0..samples {
                let seed = point_seed(args.seed, &format!("l3/{d}/{s}"));
                let mut rng = Xoshiro256pp::new(seed);
                let Some((g, _)) = sample_connected_gnp(n, p, &mut rng, 50) else {
                    eprintln!("warning: no connected sample at d = {d}");
                    continue;
                };
                let source = rng.below(n as u64) as NodeId;
                let layering = Layering::new(&g, source);
                let stats = analyze_layers(&g, &layering);
                for st in stats.iter().take(max_layers) {
                    let a = &mut acc[st.index];
                    a.0 += st.size as f64;
                    a.1 += st.multi_parent_fraction();
                    a.2 += st.intra_edge_density();
                    a.3 += st.mean_parents;
                    a.4 = a.4.max(st.max_children_per_parent);
                    counts[st.index] += 1;
                }
            }

            let realized_d = d; // target ≈ realized for G(n,p)
            for (i, (&(size, mp, intra, _par, maxc), &cnt)) in acc.iter().zip(&counts).enumerate() {
                if cnt == 0 {
                    break;
                }
                let size = size / cnt as f64;
                let mp = mp / cnt as f64;
                let intra = intra / cnt as f64;
                let pred = realized_d.powi(i as i32).min(n as f64);
                // Lemma 3's tree bounds apply below the Θ(n/d) saturation point;
                // mark layers past it.
                let label = if size >= n as f64 / realized_d {
                    format!("{i} (big)")
                } else {
                    i.to_string()
                };
                table.add_row(vec![
                    label,
                    fnum(size, 1),
                    fsci(pred),
                    fnum(size / pred, 3),
                    fnum(mp, 4),
                    fnum(1.0 / (realized_d * realized_d), 4),
                    fnum(intra, 4),
                    maxc.to_string(),
                ]);
                csv.add_row(&[
                    format!("{d}"),
                    i.to_string(),
                    format!("{size}"),
                    format!("{pred}"),
                    format!("{mp}"),
                    format!("{}", 1.0 / (realized_d * realized_d)),
                    format!("{intra}"),
                    maxc.to_string(),
                ]);
                report.push(
                    BenchPoint::new(&format!("d={d:.1}/layer={i}"))
                        .field("d", Json::from(d))
                        .field("layer", Json::from(i))
                        .field("size", Json::from(size))
                        .field("predicted_d_pow_i", Json::from(pred))
                        .field("multi_parent_frac", Json::from(mp))
                        .field("intra_edges_per_node", Json::from(intra))
                        .field("max_children", Json::from(maxc)),
                );
            }
            outln!(ctx, "{}", table.render());
            outln!(ctx);
        }

        outln!(
            ctx,
            "reading: size/d^i stays Θ(1) until the layer saturates at Θ(n/d); the"
        );
        outln!(
            ctx,
            "multi-parent fraction of non-final layers tracks the O(1/d²) bound and the"
        );
        outln!(
            ctx,
            "intra-edge density stays far below 1 — the layers are near-trees, which is"
        );
        outln!(
            ctx,
            "what makes parity flooding (phase 1 of Theorem 5) collision-free."
        );
        write_csv("exp_l3", csv.finish());
        report
    }
}
