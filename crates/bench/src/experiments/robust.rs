//! Experiment E-ROB — fault injection: broadcast under reception loss.
//!
//! Extension beyond the paper: real radios lose packets to fading and noise
//! even without collisions.  The simulator's fault-injection mode drops each
//! otherwise-successful reception independently with probability `f`
//! ([`radio_sim::RunConfig::with_loss`]).  Random-graph broadcast should be
//! robust: a lost delivery is retried by later selective rounds, so the
//! expected slowdown is roughly `1/(1−f)` and completion is maintained
//! until `f` approaches 1.
//!
//! Method: fix `(n, p)`, sweep `f`, run the EG protocol and Decay; record
//! completion rate and mean rounds.  A second table runs the multi-source
//! variant — at polylog density the flood phase is only ~2 rounds, so the
//! expected (and observed) effect of extra sources is near nil.

#![allow(clippy::type_complexity)]

use radio_analysis::{fnum, proportion_ci, CsvWriter, Summary, Table};
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::NodeId;
use radio_sim::{
    run_protocol, run_protocol_multi, run_trials, Json, Protocol, RunConfig, TraceLevel,
};

use crate::common::{point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{summary_to_json, BenchPoint, BenchReport};

/// Fault-injection extension: broadcast under reception loss.
pub struct Robust;

impl Experiment for Robust {
    fn name(&self) -> &'static str {
        "robust"
    }
    fn banner_id(&self) -> &'static str {
        "E-ROB"
    }
    fn claim(&self) -> &'static str {
        "broadcast under per-reception loss f: rounds grow ≈ 1/(1−f), completion maintained"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^13"), ("loss", "0..0.9"), ("trials", "25")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 11, 1 << 13, 1 << 15));
        let p = (n as f64).ln().powi(2) / n as f64;
        let trials = args.trials_or(args.scale(8, 25, 60));
        let losses = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9];

        outln!(
            ctx,
            "n = {n}, d = {:.1}, {trials} trials per cell\n",
            p * n as f64
        );
        outln!(ctx, "## Loss sweep\n");

        let mut table = Table::new(vec![
            "protocol",
            "loss f",
            "completion",
            "rounds",
            "±sd",
            "slowdown vs f=0",
            "1/(1−f)",
        ]);
        let mut csv = CsvWriter::new(&["protocol", "loss", "completions", "trials", "mean_rounds"]);

        for proto_name in ["eg-distributed", "decay"] {
            let mut baseline: Option<f64> = None;
            for &f in &losses {
                let seed = point_seed(args.seed, &format!("rob/{proto_name}/{f}"));
                let results: Vec<Option<u32>> = run_trials(trials, seed, |_i, rng| {
                    let (g, _) = sample_connected_gnp(n, p, rng, 50)?;
                    let source = rng.below(n as u64) as NodeId;
                    let cfg = RunConfig::for_graph(n)
                        .with_loss(f)
                        .with_trace(TraceLevel::SummaryOnly);
                    let mut proto: Box<dyn Protocol> = match proto_name {
                        "eg-distributed" => Box::new(EgDistributed::new(p)),
                        _ => Box::new(Decay::new()),
                    };
                    let r = run_protocol(&g, source, proto.as_mut(), cfg, rng);
                    r.completed.then_some(r.rounds)
                });
                let rounds: Vec<f64> = results.iter().flatten().map(|&r| r as f64).collect();
                let completions = rounds.len();
                let ci = proportion_ci(completions, trials).unwrap();
                let s = Summary::of(&rounds);
                let mean = s.as_ref().map(|s| s.mean);
                if f == 0.0 {
                    baseline = mean;
                }
                let slowdown = match (mean, baseline) {
                    (Some(m), Some(b)) if b > 0.0 => fnum(m / b, 2),
                    _ => "—".into(),
                };
                table.add_row(vec![
                    proto_name.to_string(),
                    fnum(f, 2),
                    fnum(ci.estimate, 2),
                    s.as_ref().map(|s| fnum(s.mean, 1)).unwrap_or("—".into()),
                    s.as_ref().map(|s| fnum(s.std_dev, 1)).unwrap_or("—".into()),
                    slowdown,
                    fnum(1.0 / (1.0 - f).max(1e-9), 2),
                ]);
                csv.add_row(&[
                    proto_name.to_string(),
                    format!("{f}"),
                    completions.to_string(),
                    trials.to_string(),
                    mean.map(|m| format!("{m}")).unwrap_or_default(),
                ]);
                report.push(
                    BenchPoint::new(&format!("{proto_name}/f={f}"))
                        .field("protocol", Json::from(proto_name))
                        .field("loss", Json::from(f))
                        .field("completion_rate", Json::from(ci.estimate))
                        .field("ci_lo", Json::from(ci.lo))
                        .field("ci_hi", Json::from(ci.hi))
                        .field("rounds", s.as_ref().map_or(Json::Null, summary_to_json))
                        .field("trials", Json::from(trials)),
                );
            }
        }
        outln!(ctx, "{}", table.render());

        // ---- multi-source -----------------------------------------------------
        outln!(ctx, "\n## Multi-source broadcast (no loss): k sources\n");
        let mut t2 = Table::new(vec!["k sources", "rounds", "±sd", "ok"]);
        for &k in &[1usize, 2, 4, 16, 64] {
            let seed = point_seed(args.seed, &format!("rob/multi/{k}"));
            let rounds: Vec<f64> = run_trials(trials, seed, |_i, rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return f64::NAN;
                };
                let sources: Vec<NodeId> = (0..k).map(|_| rng.below(n as u64) as NodeId).collect();
                let mut proto = EgDistributed::new(p);
                let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);
                let r = run_protocol_multi(&g, &sources, &mut proto, cfg, rng);
                if r.completed {
                    r.rounds as f64
                } else {
                    f64::NAN
                }
            })
            .into_iter()
            .filter(|x| x.is_finite())
            .collect();
            let Some(s) = Summary::of(&rounds) else {
                continue;
            };
            t2.add_row(vec![
                k.to_string(),
                fnum(s.mean, 1),
                fnum(s.std_dev, 1),
                format!("{}/{}", rounds.len(), trials),
            ]);
            csv.add_row(&[
                format!("multi-k{k}"),
                "0".to_string(),
                rounds.len().to_string(),
                trials.to_string(),
                format!("{}", s.mean),
            ]);
            report.push(
                BenchPoint::new(&format!("multi-source/k={k}"))
                    .field("k", Json::from(k))
                    .field("rounds", summary_to_json(&s))
                    .field("completed", Json::from(rounds.len()))
                    .field("trials", Json::from(trials)),
            );
        }
        outln!(ctx, "{}", t2.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: completion stays at 1.0 through f = 0.9 for both protocols — the"
        );
        outln!(
            ctx,
            "selective phases simply retry lost deliveries. Slowdown tracks the 1/(1−f)"
        );
        outln!(
            ctx,
            "heuristic, drifting somewhat above it at extreme loss (the last stragglers"
        );
        outln!(
            ctx,
            "need several consecutive successes). Extra sources barely help here: the"
        );
        outln!(
            ctx,
            "EG flood phase is only D₁ ≈ log_d n ≈ 2 rounds at this density, so there"
        );
        outln!(
            ctx,
            "is almost nothing for k sources to shave — robustness comes from the"
        );
        outln!(ctx, "selective phase, not the flood.");
        write_csv("exp_robust", csv.finish());
        report
    }
}
