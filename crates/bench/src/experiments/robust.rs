//! Experiment E-ROB — fault injection: broadcast under loss and node faults.
//!
//! Extension beyond the paper: real radios lose packets and real nodes
//! fail.  Two measurement families share this experiment:
//!
//! 1. **Reception loss** — each otherwise-successful reception is dropped
//!    independently with probability `f`
//!    ([`radio_sim::RunConfig::with_loss`]).  Random-graph broadcast should
//!    be robust: a lost delivery is retried by later selective rounds, so
//!    the expected slowdown is roughly `1/(1−f)` and completion is
//!    maintained until `f` approaches 1.
//! 2. **Fault matrix** — structured node faults from the fault-model
//!    subsystem ([`radio_sim::FaultPlan`]): crash (fail-stop), sleep (late
//!    wake), jammers (persistent local noise), and Gilbert–Elliott burst
//!    loss, each swept over an intensity grid for EG, Decay, and the
//!    epoch-restarting EG wrapper ([`Restartable`]).  The metric shifts
//!    from completion to *graceful degradation*: final coverage fraction,
//!    residual uninformed among live reachable nodes, and slowdown of the
//!    completed runs against the fault-free baseline.
//!
//! A third table runs the multi-source variant — at polylog density the
//! flood phase is only ~2 rounds, so the expected (and observed) effect of
//! extra sources is near nil.

#![allow(clippy::type_complexity)]

use radio_analysis::{fnum, proportion_ci, CsvWriter, Summary, Table};
use radio_broadcast::distributed::{Decay, EgDistributed, Restartable};
use radio_graph::NodeId;
use radio_sim::{
    run_trials, FaultConfig, FaultPlan, Json, Protocol, RunConfig, RunSpec, TraceLevel,
};

use crate::common::{point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{summary_to_json, BenchPoint, BenchReport};

/// Fault-injection extension: broadcast under loss and node faults.
pub struct Robust;

/// The three protocols the fault matrix compares.
const FM_PROTOCOLS: [&str; 3] = ["eg-distributed", "decay", "restartable-eg"];

fn fm_protocol(name: &str, p: f64) -> Box<dyn Protocol> {
    match name {
        "eg-distributed" => Box::new(EgDistributed::new(p)),
        "decay" => Box::new(Decay::new()),
        _ => Box::new(Restartable::auto(EgDistributed::new(p))),
    }
}

/// Builds the [`FaultConfig`] for one fault-matrix cell.  `x` is the
/// sweep intensity: a node fraction for `crash`/`sleep`, a jammer count
/// for `jam`, and the bad-state entry probability for `burst`.
fn fm_config(fault: &str, x: f64) -> FaultConfig {
    let mut cfg = FaultConfig::default();
    match fault {
        "crash" => cfg.crash_rate = x,
        "sleep" => cfg.sleep_rate = x,
        "jam" => {
            cfg.jammers = x as usize;
            cfg.jam_from = 1;
            cfg.jam_len = 0; // jam forever
        }
        _ => {
            if x > 0.0 {
                cfg.burst = Some(radio_sim::BurstParams {
                    p_bad: x,
                    p_good: 0.25,
                });
            }
        }
    }
    cfg
}

impl Experiment for Robust {
    fn name(&self) -> &'static str {
        "robust"
    }
    fn banner_id(&self) -> &'static str {
        "E-ROB"
    }
    fn claim(&self) -> &'static str {
        "graceful degradation: loss slows broadcast ≈ 1/(1−f); crash/sleep/jam/burst faults \
         degrade coverage smoothly, and epoch restarts recover stragglers"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![
            ("n", "2^13"),
            ("loss", "0..0.9"),
            ("faults", "crash|sleep|jam|burst"),
            ("trials", "25"),
        ]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 11, 1 << 13, 1 << 15));
        let p = (n as f64).ln().powi(2) / n as f64;
        let trials = args.trials_or(args.scale(8, 25, 60));
        let losses = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9];

        outln!(
            ctx,
            "n = {n}, d = {:.1}, {trials} trials per cell\n",
            p * n as f64
        );
        outln!(ctx, "## Loss sweep\n");

        let mut table = Table::new(vec![
            "protocol",
            "loss f",
            "completion",
            "rounds",
            "±sd",
            "slowdown vs f=0",
            "1/(1−f)",
        ]);
        let mut csv = CsvWriter::new(&[
            "protocol",
            "loss",
            "completions",
            "trials",
            "mean_rounds",
            "resamples",
        ]);

        for proto_name in ["eg-distributed", "decay"] {
            let mut baseline: Option<f64> = None;
            for &f in &losses {
                let seed = point_seed(args.seed, &format!("rob/{proto_name}/{f}"));
                let results: Vec<(Option<u32>, usize)> = run_trials(trials, seed, |_i, rng| {
                    let Some((g, rejected)) = sample_connected_gnp(n, p, rng, 50) else {
                        return (None, 50);
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let cfg = RunConfig::for_graph(n)
                        .with_loss(f)
                        .with_trace(TraceLevel::SummaryOnly);
                    let mut proto: Box<dyn Protocol> = match proto_name {
                        "eg-distributed" => Box::new(EgDistributed::new(p)),
                        _ => Box::new(Decay::new()),
                    };
                    let r = RunSpec::on_graph(&g, source)
                        .with_config(cfg)
                        .run_with_rng(proto.as_mut(), rng)
                        .into_single();
                    (r.completed.then_some(r.rounds), rejected)
                });
                let rounds: Vec<f64> = results
                    .iter()
                    .filter_map(|(r, _)| r.map(|x| x as f64))
                    .collect();
                let resamples: usize = results.iter().map(|(_, rej)| rej).sum();
                let completions = rounds.len();
                let ci = proportion_ci(completions, trials).unwrap();
                let s = Summary::of(&rounds);
                let mean = s.as_ref().map(|s| s.mean);
                if f == 0.0 {
                    baseline = mean;
                }
                let slowdown = match (mean, baseline) {
                    (Some(m), Some(b)) if b > 0.0 => fnum(m / b, 2),
                    _ => "—".into(),
                };
                table.add_row(vec![
                    proto_name.to_string(),
                    fnum(f, 2),
                    fnum(ci.estimate, 2),
                    s.as_ref().map(|s| fnum(s.mean, 1)).unwrap_or("—".into()),
                    s.as_ref().map(|s| fnum(s.std_dev, 1)).unwrap_or("—".into()),
                    slowdown,
                    fnum(1.0 / (1.0 - f).max(1e-9), 2),
                ]);
                csv.add_row(&[
                    proto_name.to_string(),
                    format!("{f}"),
                    completions.to_string(),
                    trials.to_string(),
                    mean.map(|m| format!("{m}")).unwrap_or_default(),
                    resamples.to_string(),
                ]);
                report.push(
                    BenchPoint::new(&format!("{proto_name}/f={f}"))
                        .field("protocol", Json::from(proto_name))
                        .field("loss", Json::from(f))
                        .field("completion_rate", Json::from(ci.estimate))
                        .field("ci_lo", Json::from(ci.lo))
                        .field("ci_hi", Json::from(ci.hi))
                        .field("rounds", s.as_ref().map_or(Json::Null, summary_to_json))
                        .field("trials", Json::from(trials))
                        .field("resamples", Json::from(resamples)),
                );
            }
        }
        outln!(ctx, "{}", table.render());

        // ---- fault matrix -----------------------------------------------------
        let fm_trials = args.trials_or(args.scale(6, 20, 40));
        let budget = (24.0 * (n as f64).ln()).ceil() as u32;
        outln!(
            ctx,
            "\n## Fault matrix ({fm_trials} trials per cell, round budget {budget})\n"
        );
        outln!(
            ctx,
            "coverage = informed/n at budget; residual = live reachable nodes left"
        );
        outln!(
            ctx,
            "uninformed; slowdown = mean completed rounds vs the fault-free cell.\n"
        );

        let sweeps: [(&str, &[f64]); 4] = [
            ("crash", &[0.0, 0.05, 0.1, 0.2, 0.4]),
            ("sleep", &[0.0, 0.1, 0.3, 0.6]),
            ("jam", &[0.0, 1.0, 4.0, 16.0]),
            ("burst", &[0.0, 0.1, 0.3, 0.6]),
        ];
        let mut t_faults = Table::new(vec![
            "fault",
            "x",
            "protocol",
            "coverage",
            "completion",
            "rounds",
            "slowdown",
            "residual",
        ]);
        let mut fcsv = CsvWriter::new(&[
            "fault",
            "intensity",
            "protocol",
            "coverage_mean",
            "completions",
            "trials",
            "mean_rounds",
            "residual_mean",
            "resamples",
        ]);
        for (fault, grid) in sweeps {
            for proto_name in FM_PROTOCOLS {
                let mut baseline: Option<f64> = None;
                for &x in grid {
                    let seed = point_seed(args.seed, &format!("rob/fm/{fault}/{proto_name}/{x}"));
                    let results: Vec<Option<(f64, Option<u32>, usize, usize)>> =
                        run_trials(fm_trials, seed, |_i, rng| {
                            let (g, rejected) = sample_connected_gnp(n, p, rng, 50)?;
                            let source = rng.below(n as u64) as NodeId;
                            let mut fc = fm_config(fault, x);
                            fc.exempt = Some(source);
                            let plan = FaultPlan::generate(&g, &fc, rng.next());
                            let cfg = RunConfig::for_graph(n)
                                .with_max_rounds(budget)
                                .with_trace(TraceLevel::SummaryOnly);
                            let mut proto = fm_protocol(proto_name, p);
                            let r = RunSpec::on_graph(&g, source)
                                .with_config(cfg)
                                .with_faults(&plan)
                                .run_with_rng(&mut proto, rng)
                                .into_single();
                            let residual =
                                r.faults.map_or(0, |summary| summary.residual_uninformed);
                            Some((
                                r.informed as f64 / n as f64,
                                r.completed.then_some(r.rounds),
                                residual,
                                rejected,
                            ))
                        });
                    let ok: Vec<&(f64, Option<u32>, usize, usize)> =
                        results.iter().flatten().collect();
                    if ok.is_empty() {
                        continue;
                    }
                    let coverage = ok.iter().map(|(c, _, _, _)| c).sum::<f64>() / ok.len() as f64;
                    let residual_mean =
                        ok.iter().map(|(_, _, r, _)| *r as f64).sum::<f64>() / ok.len() as f64;
                    let resamples: usize = ok.iter().map(|(_, _, _, rej)| rej).sum();
                    let rounds: Vec<f64> = ok
                        .iter()
                        .filter_map(|(_, r, _, _)| r.map(|x| x as f64))
                        .collect();
                    let completions = rounds.len();
                    let s = Summary::of(&rounds);
                    let mean = s.as_ref().map(|s| s.mean);
                    if x == 0.0 {
                        baseline = mean;
                    }
                    let slowdown = match (mean, baseline) {
                        (Some(m), Some(b)) if b > 0.0 => Some(m / b),
                        _ => None,
                    };
                    t_faults.add_row(vec![
                        fault.to_string(),
                        fnum(x, 2),
                        proto_name.to_string(),
                        fnum(coverage, 3),
                        format!("{completions}/{}", ok.len()),
                        s.as_ref().map(|s| fnum(s.mean, 1)).unwrap_or("—".into()),
                        slowdown.map(|sd| fnum(sd, 2)).unwrap_or("—".into()),
                        fnum(residual_mean, 1),
                    ]);
                    fcsv.add_row(&[
                        fault.to_string(),
                        format!("{x}"),
                        proto_name.to_string(),
                        format!("{coverage}"),
                        completions.to_string(),
                        ok.len().to_string(),
                        mean.map(|m| format!("{m}")).unwrap_or_default(),
                        format!("{residual_mean}"),
                        resamples.to_string(),
                    ]);
                    report.push(
                        BenchPoint::new(&format!("fault/{fault}/{proto_name}/x={x}"))
                            .field("fault", Json::from(fault))
                            .field("intensity", Json::from(x))
                            .field("protocol", Json::from(proto_name))
                            .field("coverage_mean", Json::from(coverage))
                            .field(
                                "completion_rate",
                                Json::from(completions as f64 / ok.len() as f64),
                            )
                            .field("rounds", s.as_ref().map_or(Json::Null, summary_to_json))
                            .field("slowdown", slowdown.map_or(Json::Null, Json::from))
                            .field("residual_mean", Json::from(residual_mean))
                            .field("resamples", Json::from(resamples))
                            .field("trials", Json::from(ok.len())),
                    );
                }
            }
        }
        outln!(ctx, "{}", t_faults.render());
        write_csv("exp_robust_faults", fcsv.finish());

        // ---- multi-source -----------------------------------------------------
        outln!(ctx, "\n## Multi-source broadcast (no loss): k sources\n");
        let mut t2 = Table::new(vec!["k sources", "rounds", "±sd", "ok"]);
        for &k in &[1usize, 2, 4, 16, 64] {
            let seed = point_seed(args.seed, &format!("rob/multi/{k}"));
            let rounds: Vec<f64> = run_trials(trials, seed, |_i, rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return f64::NAN;
                };
                let sources: Vec<NodeId> = (0..k).map(|_| rng.below(n as u64) as NodeId).collect();
                let mut proto = EgDistributed::new(p);
                let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);
                let r = RunSpec::on_graph(&g, 0)
                    .with_sources(&sources)
                    .with_config(cfg)
                    .run_with_rng(&mut proto, rng)
                    .into_single();
                if r.completed {
                    r.rounds as f64
                } else {
                    f64::NAN
                }
            })
            .into_iter()
            .filter(|x| x.is_finite())
            .collect();
            let Some(s) = Summary::of(&rounds) else {
                continue;
            };
            t2.add_row(vec![
                k.to_string(),
                fnum(s.mean, 1),
                fnum(s.std_dev, 1),
                format!("{}/{}", rounds.len(), trials),
            ]);
            csv.add_row(&[
                format!("multi-k{k}"),
                "0".to_string(),
                rounds.len().to_string(),
                trials.to_string(),
                format!("{}", s.mean),
                "0".to_string(),
            ]);
            report.push(
                BenchPoint::new(&format!("multi-source/k={k}"))
                    .field("k", Json::from(k))
                    .field("rounds", summary_to_json(&s))
                    .field("completed", Json::from(rounds.len()))
                    .field("trials", Json::from(trials)),
            );
        }
        outln!(ctx, "{}", t2.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: completion stays at 1.0 through f = 0.9 for both protocols — the"
        );
        outln!(
            ctx,
            "selective phases simply retry lost deliveries. Slowdown tracks the 1/(1−f)"
        );
        outln!(
            ctx,
            "heuristic, drifting somewhat above it at extreme loss (the last stragglers"
        );
        outln!(
            ctx,
            "need several consecutive successes). In the fault matrix, coverage falls"
        );
        outln!(
            ctx,
            "smoothly — not catastrophically — with crash rate (the survivors' subgraph"
        );
        outln!(
            ctx,
            "stays an expander), sleep and burst faults cost rounds rather than"
        );
        outln!(
            ctx,
            "coverage once epochs restart, and a few jammers only blind their own"
        );
        outln!(
            ctx,
            "neighborhoods. Extra sources barely help here: the EG flood phase is only"
        );
        outln!(
            ctx,
            "D₁ ≈ log_d n ≈ 2 rounds at this density, so there is almost nothing for"
        );
        outln!(
            ctx,
            "k sources to shave — robustness comes from the selective phase, not the"
        );
        outln!(ctx, "flood.");
        write_csv("exp_robust", csv.finish());
        report
    }
}
