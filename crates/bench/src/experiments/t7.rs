//! Experiment E-T7 — Theorem 7 (distributed upper bound).
//!
//! Claim: the randomized fully distributed protocol (nodes know only `n` and
//! `p`) broadcasts on `G(n, p)` in `O(ln n)` rounds w.h.p.
//!
//! Method: sweep `n` over powers of two in three density regimes, run the
//! EG protocol on connected samples from a random source, record rounds to
//! completion.  The claim holds if `rounds / ln n` is bounded by a constant
//! independent of `n` and regime, i.e. the fit `rounds ≈ a·ln n + b` has a
//! stable positive slope and high `R²`.

#![allow(clippy::type_complexity)]

use radio_analysis::{fit_log_form, fnum, CsvWriter, Table};
use radio_broadcast::distributed::EgDistributed;
use radio_broadcast::theory::distributed_bound;
use radio_sim::Json;

use crate::common::{measure_protocol, point_seed, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{protocol_point_to_json, BenchPoint, BenchReport};

/// Theorem 7: distributed upper bound.
pub struct T7;

impl Experiment for T7 {
    fn name(&self) -> &'static str {
        "t7"
    }
    fn banner_id(&self) -> &'static str {
        "E-T7"
    }
    fn claim(&self) -> &'static str {
        "distributed broadcast in O(ln n) rounds knowing only n, p (Theorem 7)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^10..2^16"), ("regimes", "3"), ("trials", "25")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let exps: Vec<u32> = match () {
            _ if args.quick => vec![10, 12],
            _ if args.full => (10..=18).collect(),
            _ => (10..=16).collect(),
        };
        let ns: Vec<usize> = args.sizes(exps.iter().map(|&k| 1usize << k).collect());
        let trials = args.trials_or(args.scale(8, 25, 50));

        let regimes: Vec<(&str, fn(usize) -> f64, usize)> = vec![
            (
                "polylog ln²n/n",
                |n| (n as f64).ln().powi(2) / n as f64,
                usize::MAX,
            ),
            ("sqrt n^-1/2", |n| (n as f64).powf(-0.5), 1 << 16),
            ("const p=0.05", |_| 0.05, 1 << 13),
        ];

        let mut table = Table::new(vec![
            "regime",
            "n",
            "d(avg)",
            "rounds",
            "±sd",
            "ln n",
            "rounds/ln n",
            "ok",
        ]);
        let mut csv = CsvWriter::new(&[
            "regime",
            "n",
            "p",
            "mean_degree",
            "mean_rounds",
            "sd_rounds",
            "ln_n",
            "completed",
            "trials",
        ]);
        let mut fit_points: Vec<(usize, f64)> = Vec::new();

        for (name, pf, max_n) in &regimes {
            for &n in &ns {
                if n > *max_n {
                    continue;
                }
                let p = pf(n);
                let seed = point_seed(args.seed, &format!("t7/{name}/{n}"));
                let point = measure_protocol(n, p, trials, seed, || EgDistributed::new(p));
                let ln_n = distributed_bound(n);
                let Some(rounds) = &point.rounds else {
                    eprintln!("warning: no completed trials at {name}, n = {n}");
                    // Still emit the point (completed = 0, rounds = null) so the
                    // sweep stays rectangular for radio-analysis consumers.
                    report.push(
                        protocol_point_to_json(&format!("{name}/n={n}"), &point)
                            .field("regime", Json::from(*name))
                            .field("ln_n", Json::from(ln_n)),
                    );
                    continue;
                };
                table.add_row(vec![
                    name.to_string(),
                    n.to_string(),
                    fnum(point.mean_degree, 1),
                    fnum(rounds.mean, 1),
                    fnum(rounds.std_dev, 1),
                    fnum(ln_n, 1),
                    fnum(rounds.mean / ln_n, 2),
                    format!("{}/{}", point.completed, point.trials),
                ]);
                csv.add_row(&[
                    name.to_string(),
                    n.to_string(),
                    format!("{p}"),
                    format!("{}", point.mean_degree),
                    format!("{}", rounds.mean),
                    format!("{}", rounds.std_dev),
                    format!("{ln_n}"),
                    point.completed.to_string(),
                    point.trials.to_string(),
                ]);
                report.push(
                    protocol_point_to_json(&format!("{name}/n={n}"), &point)
                        .field("regime", Json::from(*name))
                        .field("ln_n", Json::from(ln_n))
                        .field("rounds_over_ln_n", Json::from(rounds.mean / ln_n)),
                );
                fit_points.push((n, rounds.mean));
            }
        }

        outln!(ctx, "{}", table.render());

        if let Some(fit) = fit_log_form(&fit_points) {
            outln!(ctx);
            outln!(
                ctx,
                "fit: rounds ≈ {:.2}·ln n + {:.2}   (R² = {:.3})",
                fit.a,
                fit.b,
                fit.r_squared
            );
            outln!(
                ctx,
                "paper predicts rounds = Θ(ln n): slope a should be a positive O(1) constant."
            );
            report.push(
                BenchPoint::new("fit")
                    .field("a", Json::from(fit.a))
                    .field("b", Json::from(fit.b))
                    .field("r_squared", Json::from(fit.r_squared)),
            );
        }
        write_csv("exp_t7", csv.finish());
        report
    }
}
