//! Experiment E-T7 — Theorem 7 (distributed upper bound).
//!
//! Claim: the randomized fully distributed protocol (nodes know only `n` and
//! `p`) broadcasts on `G(n, p)` in `O(ln n)` rounds w.h.p.
//!
//! Method: sweep `n` over powers of two in three density regimes, run the
//! EG protocol on connected samples from a random source, record rounds to
//! completion.  The claim holds if `rounds / ln n` is bounded by a constant
//! independent of `n` and regime, i.e. the fit `rounds ≈ a·ln n + b` has a
//! stable positive slope and high `R²`.

//! With `--backend implicit|sharded|auto` the sweep switches to the
//! **provider-driven scale regime**: the seed-only implicit `G(n, p)`
//! backend at the connectivity threshold `p = 2.5 ln n / n`, reaching
//! `n = 10⁷` in `--full` mode with no adjacency in memory.  No
//! connectivity conditioning is applied there (BFS needs explicit
//! adjacency; at `2.5×` threshold the disconnection probability is
//! `O(n^{-1.5})`, negligible at these sizes) — incomplete trials are
//! simply reported as incomplete.

#![allow(clippy::type_complexity)]

use radio_analysis::{fit_log_form, fnum, CsvWriter, Table};
use radio_broadcast::distributed::EgDistributed;
use radio_broadcast::theory::distributed_bound;
use radio_graph::ImplicitGnp;
use radio_sim::{resolve_backend, thread_budget, Backend, Json, RunConfig, RunSpec, TraceLevel};

use crate::common::{measure_custom, measure_protocol, point_seed, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{protocol_point_to_json, BenchPoint, BenchReport};

/// Edge probability of the scale regime: `2.5 ln n / n`, comfortably above
/// the connectivity threshold `ln n / n`.
pub fn scale_p(n: usize) -> f64 {
    (2.5 * (n.max(2) as f64).ln() / n as f64).min(1.0)
}

/// Theorem 7: distributed upper bound.
pub struct T7;

impl Experiment for T7 {
    fn name(&self) -> &'static str {
        "t7"
    }
    fn banner_id(&self) -> &'static str {
        "E-T7"
    }
    fn claim(&self) -> &'static str {
        "distributed broadcast in O(ln n) rounds knowing only n, p (Theorem 7)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^10..2^16"), ("regimes", "3"), ("trials", "25")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        if args.backend != Backend::Explicit {
            return run_scale_sweep(self, ctx);
        }
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let exps: Vec<u32> = match () {
            _ if args.quick => vec![10, 12],
            _ if args.full => (10..=18).collect(),
            _ => (10..=16).collect(),
        };
        let ns: Vec<usize> = args.sizes(exps.iter().map(|&k| 1usize << k).collect());
        let trials = args.trials_or(args.scale(8, 25, 50));

        let regimes: Vec<(&str, fn(usize) -> f64, usize)> = vec![
            (
                "polylog ln²n/n",
                |n| (n as f64).ln().powi(2) / n as f64,
                usize::MAX,
            ),
            ("sqrt n^-1/2", |n| (n as f64).powf(-0.5), 1 << 16),
            ("const p=0.05", |_| 0.05, 1 << 13),
        ];

        let mut table = Table::new(vec![
            "regime",
            "n",
            "d(avg)",
            "rounds",
            "±sd",
            "ln n",
            "rounds/ln n",
            "ok",
        ]);
        let mut csv = CsvWriter::new(&[
            "regime",
            "n",
            "p",
            "mean_degree",
            "mean_rounds",
            "sd_rounds",
            "ln_n",
            "completed",
            "trials",
        ]);
        let mut fit_points: Vec<(usize, f64)> = Vec::new();

        for (name, pf, max_n) in &regimes {
            for &n in &ns {
                if n > *max_n {
                    continue;
                }
                let p = pf(n);
                let seed = point_seed(args.seed, &format!("t7/{name}/{n}"));
                let point = measure_protocol(n, p, trials, seed, || EgDistributed::new(p));
                let ln_n = distributed_bound(n);
                let Some(rounds) = &point.rounds else {
                    eprintln!("warning: no completed trials at {name}, n = {n}");
                    // Still emit the point (completed = 0, rounds = null) so the
                    // sweep stays rectangular for radio-analysis consumers.
                    report.push(
                        protocol_point_to_json(&format!("{name}/n={n}"), &point)
                            .field("regime", Json::from(*name))
                            .field("ln_n", Json::from(ln_n)),
                    );
                    continue;
                };
                table.add_row(vec![
                    name.to_string(),
                    n.to_string(),
                    fnum(point.mean_degree, 1),
                    fnum(rounds.mean, 1),
                    fnum(rounds.std_dev, 1),
                    fnum(ln_n, 1),
                    fnum(rounds.mean / ln_n, 2),
                    format!("{}/{}", point.completed, point.trials),
                ]);
                csv.add_row(&[
                    name.to_string(),
                    n.to_string(),
                    format!("{p}"),
                    format!("{}", point.mean_degree),
                    format!("{}", rounds.mean),
                    format!("{}", rounds.std_dev),
                    format!("{ln_n}"),
                    point.completed.to_string(),
                    point.trials.to_string(),
                ]);
                report.push(
                    protocol_point_to_json(&format!("{name}/n={n}"), &point)
                        .field("regime", Json::from(*name))
                        .field("ln_n", Json::from(ln_n))
                        .field("rounds_over_ln_n", Json::from(rounds.mean / ln_n)),
                );
                fit_points.push((n, rounds.mean));
            }
        }

        outln!(ctx, "{}", table.render());

        if let Some(fit) = fit_log_form(&fit_points) {
            outln!(ctx);
            outln!(
                ctx,
                "fit: rounds ≈ {:.2}·ln n + {:.2}   (R² = {:.3})",
                fit.a,
                fit.b,
                fit.r_squared
            );
            outln!(
                ctx,
                "paper predicts rounds = Θ(ln n): slope a should be a positive O(1) constant."
            );
            report.push(
                BenchPoint::new("fit")
                    .field("a", Json::from(fit.a))
                    .field("b", Json::from(fit.b))
                    .field("r_squared", Json::from(fit.r_squared)),
            );
        }
        write_csv("exp_t7", csv.finish());
        report
    }
}

/// The provider-backed Theorem-7 scale sweep (`--backend
/// implicit|sharded|auto`): EG rounds at `p = 2.5 ln n / n` on the
/// adjacency-free sweep engine, up to `n = 10⁷` in `--full` mode.
fn run_scale_sweep(exp: &T7, ctx: &ExpContext) -> BenchReport {
    let args = &ctx.args;
    let mut report = BenchReport::new(exp.name(), exp.claim(), args.mode(), args.seed);

    let ns: Vec<usize> = args.sizes(args.scale(
        vec![1 << 14, 1 << 15],
        vec![1 << 16, 1 << 18, 1 << 20],
        vec![1 << 18, 1 << 20, 1 << 22, 10_000_000],
    ));
    let trials = args.trials_or(args.scale(2, 3, 1));
    // Implicit sweeps use one shard; the sharded backend splits rows across
    // the RADIO_THREADS worker budget (results are shard-count-invariant).
    let shards = match args.backend {
        Backend::Sharded => thread_budget(usize::MAX).max(2),
        _ => 1,
    };
    outln!(
        ctx,
        "scale regime: backend={} shards={} p=2.5·ln n/n (no connectivity conditioning)",
        args.backend,
        shards
    );

    let mut table = Table::new(vec![
        "n",
        "d(exp)",
        "rounds",
        "±sd",
        "ln n",
        "rounds/ln n",
        "ok",
        "wall_s",
    ]);
    let mut csv = CsvWriter::new(&[
        "n",
        "p",
        "backend",
        "shards",
        "mean_rounds",
        "sd_rounds",
        "ln_n",
        "completed",
        "trials",
        "wall_s",
    ]);
    let mut fit_points: Vec<(usize, f64)> = Vec::new();

    for &n in &ns {
        let p = scale_p(n);
        // Auto resolves per point; oversized runs reroute to implicit with
        // the typed bitmap-cap error as the printed note.
        let (resolved, note) = resolve_backend(args.backend, n);
        if let Some(err) = note {
            outln!(ctx, "note: n = {n} rerouted to implicit backend ({err})");
        }
        let seed = point_seed(args.seed, &format!("t7/scale/{n}"));
        let start = std::time::Instant::now();
        let point = measure_custom(n, p, trials, seed, |rng| {
            let graph_seed = rng.next();
            let source = (rng.below(n as u64)) as radio_graph::NodeId;
            let imp = ImplicitGnp::new(n, p, graph_seed);
            let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);
            let mut proto = EgDistributed::new(p);
            let r = RunSpec::on_provider(&imp, shards, source)
                .with_config(cfg)
                .run_with_rng(&mut proto, rng)
                .into_single();
            (r.completed.then_some(r.rounds), imp.expected_degree())
        });
        let wall_s = start.elapsed().as_secs_f64();
        let ln_n = distributed_bound(n);
        let rounds_mean = point.rounds.as_ref().map(|r| r.mean);
        table.add_row(vec![
            n.to_string(),
            fnum(point.mean_degree, 1),
            rounds_mean.map_or("-".into(), |m| fnum(m, 1)),
            point
                .rounds
                .as_ref()
                .map_or("-".into(), |r| fnum(r.std_dev, 1)),
            fnum(ln_n, 1),
            rounds_mean.map_or("-".into(), |m| fnum(m / ln_n, 2)),
            format!("{}/{}", point.completed, point.trials),
            fnum(wall_s, 1),
        ]);
        csv.add_row(&[
            n.to_string(),
            format!("{p}"),
            resolved.to_string(),
            shards.to_string(),
            rounds_mean.map_or(String::new(), |m| format!("{m}")),
            point
                .rounds
                .as_ref()
                .map_or(String::new(), |r| format!("{}", r.std_dev)),
            format!("{ln_n}"),
            point.completed.to_string(),
            point.trials.to_string(),
            format!("{wall_s}"),
        ]);
        let mut bench_point = protocol_point_to_json(&format!("scale/n={n}"), &point)
            .field("regime", Json::from("threshold 2.5 ln n/n"))
            .field("backend", Json::from(resolved.as_str()))
            .field("shards", Json::from(shards as u64))
            .field("ln_n", Json::from(ln_n))
            .field("wall_s", Json::from(wall_s));
        if let Some(m) = rounds_mean {
            bench_point = bench_point.field("rounds_over_ln_n", Json::from(m / ln_n));
            fit_points.push((n, m));
        }
        report.push(bench_point);
    }

    outln!(ctx, "{}", table.render());
    if let Some(fit) = fit_log_form(&fit_points) {
        outln!(
            ctx,
            "fit: rounds ≈ {:.2}·ln n + {:.2}   (R² = {:.3})",
            fit.a,
            fit.b,
            fit.r_squared
        );
        report.push(
            BenchPoint::new("fit")
                .field("a", Json::from(fit.a))
                .field("b", Json::from(fit.b))
                .field("r_squared", Json::from(fit.r_squared)),
        );
    }
    write_csv("exp_t7_scale", csv.finish());
    report
}
