//! Experiment E-ABL — ablations of the design choices (DESIGN.md §5 ✦).
//!
//! Three questions:
//!
//! 1. **Centralized phase structure** — what do the seed round (phase 2) and
//!    the `1/d`-fraction rounds (phase 3) buy over "just greedy-cover every
//!    round"?  We build schedules with phases toggled off and compare
//!    lengths and, importantly, *build cost* (greedy covers over the full
//!    graph are the expensive part the phases avoid).
//! 2. **Distributed EG variants** — the paper's literal protocol gates
//!    stage 3 on being informed by round `D` (strict); the practical variant
//!    lets everyone join.  Compare rounds and completion.
//! 3. **Stage-3 probability** — sweep the constant in `q = c/d` to show the
//!    paper's `1/d` choice sits at the sweet spot.

use radio_analysis::{fnum, CsvWriter, Table};
use radio_broadcast::centralized::{
    build_eg_schedule, greedy_cover_schedule, tree_broadcast_schedule, CentralizedParams,
};
use radio_broadcast::distributed::{ConstantProb, EgDistributed, EgVariant};
use radio_graph::NodeId;
use radio_sim::Json;

use crate::common::{
    measure_custom, measure_protocol, point_seed, sample_connected_gnp, write_csv,
};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{summary_to_json, BenchPoint, BenchReport};

/// DESIGN.md §5 ablations of the design choices.
pub struct Ablation;

impl Experiment for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }
    fn banner_id(&self) -> &'static str {
        "E-ABL"
    }
    fn claim(&self) -> &'static str {
        "design-choice ablations (DESIGN.md §5)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^13"), ("sections", "3"), ("trials", "15")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 11, 1 << 13, 1 << 15));
        let p = (n as f64).ln().powi(2) / n as f64;
        let d = p * n as f64;
        let trials = args.trials_or(args.scale(5, 15, 40));
        outln!(ctx, "n = {n}, d = {d:.1}, {trials} trials per row\n");
        let mut csv = CsvWriter::new(&["section", "variant", "mean_rounds", "completed", "trials"]);

        // ---- 1. centralized phase ablation ------------------------------------
        outln!(ctx, "## 1. Centralized schedule: phase ablation\n");
        let variants: Vec<(&str, CentralizedParams)> = vec![
            ("full (paper)", CentralizedParams::default()),
            (
                "no seed phase",
                CentralizedParams {
                    enable_seed_phase: false,
                    ..CentralizedParams::default()
                },
            ),
            (
                "no fraction phase",
                CentralizedParams {
                    enable_fraction_phase: false,
                    ..CentralizedParams::default()
                },
            ),
            (
                "covers only",
                CentralizedParams {
                    enable_seed_phase: false,
                    enable_fraction_phase: false,
                    ..CentralizedParams::default()
                },
            ),
        ];
        let mut t1 = Table::new(vec!["variant", "rounds", "±sd", "ok", "build ms (mean)"]);
        for (name, params) in &variants {
            let seed = point_seed(args.seed, &format!("abl/centr/{name}"));
            let mut build_ms = std::sync::atomic::AtomicU64::new(0);
            let point = measure_custom(n, p, trials, seed, |rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return (None, 0.0);
                };
                let source = rng.below(n as u64) as NodeId;
                let t0 = std::time::Instant::now();
                let built = build_eg_schedule(&g, source, *params, rng);
                build_ms.fetch_add(
                    t0.elapsed().as_millis() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                (
                    built.completed.then_some(built.len() as u32),
                    g.average_degree(),
                )
            });
            let Some(s) = &point.rounds else { continue };
            let build_ms_mean = *build_ms.get_mut() as f64 / trials as f64;
            t1.add_row(vec![
                name.to_string(),
                fnum(s.mean, 1),
                fnum(s.std_dev, 1),
                format!("{}/{}", point.completed, point.trials),
                fnum(build_ms_mean, 1),
            ]);
            csv.add_row(&[
                "centralized".to_string(),
                name.to_string(),
                format!("{}", s.mean),
                point.completed.to_string(),
                trials.to_string(),
            ]);
            report.push(
                BenchPoint::new(&format!("centralized/{name}"))
                    .field("variant", Json::from(*name))
                    .field("rounds", summary_to_json(s))
                    .field("completed", Json::from(point.completed))
                    .field("trials", Json::from(point.trials))
                    .field("build_ms_mean", Json::from(build_ms_mean)),
            );
        }
        // Tree-broadcast (the Õ(D·Δ) layer-coloring baseline of Clementi et
        // al. [10]) for contrast.
        {
            let seed = point_seed(args.seed, "abl/centr/tree");
            let mut build_ms = std::sync::atomic::AtomicU64::new(0);
            let point = measure_custom(n, p, trials, seed, |rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return (None, 0.0);
                };
                let source = rng.below(n as u64) as NodeId;
                let t0 = std::time::Instant::now();
                let built = tree_broadcast_schedule(&g, source);
                build_ms.fetch_add(
                    t0.elapsed().as_millis() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                (
                    built.completed.then_some(built.len() as u32),
                    g.average_degree(),
                )
            });
            if let Some(s) = &point.rounds {
                let build_ms_mean = *build_ms.get_mut() as f64 / trials as f64;
                t1.add_row(vec![
                    "tree layer-coloring [10]".to_string(),
                    fnum(s.mean, 1),
                    fnum(s.std_dev, 1),
                    format!("{}/{}", point.completed, point.trials),
                    fnum(build_ms_mean, 1),
                ]);
                csv.add_row(&[
                    "centralized".to_string(),
                    "tree layer-coloring".to_string(),
                    format!("{}", s.mean),
                    point.completed.to_string(),
                    trials.to_string(),
                ]);
                report.push(
                    BenchPoint::new("centralized/tree layer-coloring")
                        .field("variant", Json::from("tree layer-coloring"))
                        .field("rounds", summary_to_json(s))
                        .field("completed", Json::from(point.completed))
                        .field("trials", Json::from(point.trials))
                        .field("build_ms_mean", Json::from(build_ms_mean)),
                );
            }
        }
        // Pure greedy for reference.
        {
            let seed = point_seed(args.seed, "abl/centr/greedy");
            let mut build_ms = std::sync::atomic::AtomicU64::new(0);
            let point = measure_custom(n, p, trials, seed, |rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return (None, 0.0);
                };
                let source = rng.below(n as u64) as NodeId;
                let t0 = std::time::Instant::now();
                let built = greedy_cover_schedule(&g, source, 100_000, rng);
                build_ms.fetch_add(
                    t0.elapsed().as_millis() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                (
                    built.completed.then_some(built.len() as u32),
                    g.average_degree(),
                )
            });
            if let Some(s) = &point.rounds {
                let build_ms_mean = *build_ms.get_mut() as f64 / trials as f64;
                t1.add_row(vec![
                    "greedy every round".to_string(),
                    fnum(s.mean, 1),
                    fnum(s.std_dev, 1),
                    format!("{}/{}", point.completed, point.trials),
                    fnum(build_ms_mean, 1),
                ]);
                csv.add_row(&[
                    "centralized".to_string(),
                    "greedy every round".to_string(),
                    format!("{}", s.mean),
                    point.completed.to_string(),
                    trials.to_string(),
                ]);
                report.push(
                    BenchPoint::new("centralized/greedy every round")
                        .field("variant", Json::from("greedy every round"))
                        .field("rounds", summary_to_json(s))
                        .field("completed", Json::from(point.completed))
                        .field("trials", Json::from(point.trials))
                        .field("build_ms_mean", Json::from(build_ms_mean)),
                );
            }
        }
        outln!(ctx, "{}", t1.render());

        // ---- 2. distributed strict vs practical -------------------------------
        outln!(
            ctx,
            "\n## 2. Distributed EG: strict vs practical stage-3 participation\n"
        );
        let mut t2 = Table::new(vec!["variant", "rounds", "±sd", "ok"]);
        for (name, variant) in [
            ("practical (default)", EgVariant::Practical),
            ("strict (paper literal)", EgVariant::Strict),
        ] {
            let seed = point_seed(args.seed, &format!("abl/dist/{name}"));
            let point = measure_protocol(n, p, trials, seed, || {
                EgDistributed::with_variant(p, variant)
            });
            let (mean, sd) = point
                .rounds
                .as_ref()
                .map(|s| (fnum(s.mean, 1), fnum(s.std_dev, 1)))
                .unwrap_or(("—".into(), "—".into()));
            t2.add_row(vec![
                name.to_string(),
                mean.clone(),
                sd,
                format!("{}/{}", point.completed, point.trials),
            ]);
            csv.add_row(&[
                "eg-variant".to_string(),
                name.to_string(),
                mean,
                point.completed.to_string(),
                trials.to_string(),
            ]);
            report.push(
                BenchPoint::new(&format!("eg-variant/{name}"))
                    .field("variant", Json::from(name))
                    .field(
                        "rounds",
                        point.rounds.as_ref().map_or(Json::Null, summary_to_json),
                    )
                    .field("completed", Json::from(point.completed))
                    .field("trials", Json::from(point.trials)),
            );
        }
        outln!(ctx, "{}", t2.render());

        // ---- 3. constant-probability sweep -------------------------------------
        outln!(
            ctx,
            "\n## 3. Stage-3 probability: q = c/d sweep (pure constant-q protocol)\n"
        );
        let mut t3 = Table::new(vec!["q", "q·d", "rounds", "±sd", "ok"]);
        for &c in &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let q = (c / d).min(1.0);
            let seed = point_seed(args.seed, &format!("abl/q/{c}"));
            let point = measure_protocol(n, p, trials, seed, || ConstantProb::new(q));
            let (mean, sd) = point
                .rounds
                .as_ref()
                .map(|s| (fnum(s.mean, 1), fnum(s.std_dev, 1)))
                .unwrap_or(("—".into(), "—".into()));
            t3.add_row(vec![
                fnum(q, 4),
                fnum(c, 2),
                mean.clone(),
                sd,
                format!("{}/{}", point.completed, point.trials),
            ]);
            csv.add_row(&[
                "q-sweep".to_string(),
                format!("c={c}"),
                mean,
                point.completed.to_string(),
                trials.to_string(),
            ]);
            report.push(
                BenchPoint::new(&format!("q-sweep/c={c}"))
                    .field("c", Json::from(c))
                    .field("q", Json::from(q))
                    .field(
                        "rounds",
                        point.rounds.as_ref().map_or(Json::Null, summary_to_json),
                    )
                    .field("completed", Json::from(point.completed))
                    .field("trials", Json::from(point.trials)),
            );
        }
        outln!(ctx, "{}", t3.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: (1) the phase structure matches pure greedy's round count while"
        );
        outln!(
            ctx,
            "phases 1–3 are far cheaper to construct than whole-graph covers; (2) the"
        );
        outln!(
            ctx,
            "practical stage-3 completes like the strict one but without the separate"
        );
        outln!(
            ctx,
            "back-fill argument; (3) q = Θ(1/d) is the sweet spot — much larger q"
        );
        outln!(ctx, "collides, much smaller q idles.");
        write_csv("exp_ablation", csv.finish());
        report
    }
}
