//! Experiment E-DNS — the very-dense regime (§3.1 closing remark).
//!
//! Claim: for `p = 1 − f(n)` with `f(n) ∈ [1/n, 1/2]`, broadcasting takes
//! `Θ(ln n / ln(1/f))` rounds w.h.p. — fewer than `ln n` once the graph's
//! *complement* gets sparse, because every transmission informs all but
//! ≈ `f·n` listeners-with-collisions and each greedy cover round shrinks
//! the uninformed set geometrically in `f`.
//!
//! Method: fix `n`, sweep `f` downward from 1/2, schedule with the greedy
//! cover builder (the phase structure of Theorem 5 targets the sparse
//! regime; the remark's bound is cover-driven), and compare measured
//! rounds against `ln n / ln(1/f)`.

use radio_analysis::{fnum, CsvWriter, Table};
use radio_broadcast::centralized::greedy_cover_schedule;
use radio_broadcast::theory::dense_regime_bound;
use radio_graph::gnp::sample_gnp;
use radio_graph::NodeId;
use radio_sim::Json;

use crate::common::{measure_custom, point_seed, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{protocol_point_to_json, BenchReport};

/// §3.1 remark: the very-dense regime.
pub struct Dense;

impl Experiment for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }
    fn banner_id(&self) -> &'static str {
        "E-DNS"
    }
    fn claim(&self) -> &'static str {
        "dense regime p = 1−f: broadcast in Θ(ln n/ln(1/f)) rounds (§3.1 remark)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^11"), ("f", "0.5..0.01"), ("trials", "10")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 10, 1 << 11, 1 << 12));
        let trials = args.trials_or(args.scale(4, 10, 20));
        let fs = [0.5, 0.25, 0.1, 0.04, 0.01];

        outln!(
            ctx,
            "n = {n}, {trials} trials per f; greedy cover schedules\n"
        );
        let mut table = Table::new(vec![
            "f",
            "p=1−f",
            "rounds",
            "±sd",
            "ln n/ln(1/f)",
            "ratio",
            "ok",
        ]);
        let mut csv = CsvWriter::new(&["f", "mean_rounds", "bound", "completed", "trials"]);

        for &f in &fs {
            let p = 1.0 - f;
            let seed = point_seed(args.seed, &format!("dense/{f}"));
            let point = measure_custom(n, p, trials, seed, |rng| {
                // Dense graphs are connected with overwhelming probability; no
                // conditioning needed.
                let g = sample_gnp(n, p, rng);
                let source = rng.below(n as u64) as NodeId;
                let built = greedy_cover_schedule(&g, source, 10_000, rng);
                (
                    built.completed.then_some(built.len() as u32),
                    g.average_degree(),
                )
            });
            let Some(s) = &point.rounds else { continue };
            let bound = dense_regime_bound(n, f);
            table.add_row(vec![
                fnum(f, 2),
                fnum(p, 2),
                fnum(s.mean, 1),
                fnum(s.std_dev, 1),
                fnum(bound, 1),
                fnum(s.mean / bound, 2),
                format!("{}/{}", point.completed, point.trials),
            ]);
            csv.add_row(&[
                format!("{f}"),
                format!("{}", s.mean),
                format!("{bound}"),
                point.completed.to_string(),
                trials.to_string(),
            ]);
            report.push(
                protocol_point_to_json(&format!("f={f}"), &point)
                    .field("f", Json::from(f))
                    .field("bound", Json::from(bound))
                    .field("rounds_over_bound", Json::from(s.mean / bound)),
            );
        }

        outln!(ctx, "{}", table.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: measured rounds shrink as f does, tracking ln n/ln(1/f) with a"
        );
        outln!(
            ctx,
            "bounded ratio — the denser the graph, the faster the broadcast, exactly as"
        );
        outln!(
            ctx,
            "the paper's dense-regime remark states (and opposite to flooding, which"
        );
        outln!(ctx, "gets *worse* with density; see exp_flood).");
        write_csv("exp_dense", csv.finish());
        report
    }
}
