//! Experiment E-WC — random graphs vs structured worst-case-style
//! topologies (§1.2 framing).
//!
//! The paper's motivation: nearly all prior work fights adversarial
//! topologies, where deterministic broadcast costs `Ω(n log n)` and even
//! randomized protocols pay `Ω(D log(n/D))`; on *random* graphs everything
//! collapses to `Θ(ln n)`.  This experiment makes the contrast concrete by
//! racing the protocols on equal-sized instances:
//!
//! * `G(n, p)` at matched average degree (the paper's easy case),
//! * a power-law Chung–Lu graph at matched mean degree (degree
//!   concentration — the paper's standing assumption — fails),
//! * a clique chain (collision resolution needed at every hop),
//! * a dense layered graph (Lemma 3's near-tree layers fail by design),
//! * a barbell (heterogeneous density).
//!
//! EG's parameters assume `G(n, p)` statistics, so running it here also
//! probes how brittle the `(n, p)`-only knowledge assumption is off-model.

use radio_analysis::{fnum, Table};
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::chung_lu::{power_law_weights, sample_chung_lu};
use radio_graph::hard::{barbell, clique_chain, layered_expander};
use radio_graph::{child_rng, gnp::sample_gnp, Graph, NodeId, Xoshiro256pp};
use radio_sim::{run_trials, Json, Protocol, RunConfig, RunSpec, TraceLevel};

use crate::common::point_seed;
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{summary_to_json, BenchPoint, BenchReport};

/// §1.2 framing: random vs structured worst-case topologies.
pub struct Worstcase;

impl Experiment for Worstcase {
    fn name(&self) -> &'static str {
        "worstcase"
    }
    fn banner_id(&self) -> &'static str {
        "E-WC"
    }
    fn claim(&self) -> &'static str {
        "random vs structured topologies: random graphs are the easy case (§1.2)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("k", "32"), ("instances", "5"), ("trials", "15")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let trials = args.trials_or(args.scale(5, 15, 40));
        // Instances of comparable size (~20·k nodes); an --n override sets the
        // total node budget and k follows from it.
        let cliques = 20usize;
        let k = args
            .n_override
            .map(|n| (n / (2 * cliques)).max(2))
            .unwrap_or(args.scale(16, 32, 64)); // clique size / layer width scale

        let seed = point_seed(args.seed, "wc/instances");
        let mut grng = Xoshiro256pp::new(seed);
        let chain = clique_chain(cliques, k);
        let n = chain.n();
        let layered = layered_expander(20, k, 0.5, &mut grng);
        let bar = barbell(n / 3, n / 3);
        let d_match = chain.average_degree();
        let gnp = sample_gnp(n, (d_match / n as f64).min(1.0), &mut grng);
        // Power-law Chung–Lu: heterogeneous degrees break the paper's α, β
        // concentration assumption without changing the mean.
        let pl = sample_chung_lu(&power_law_weights(n, 2.5, d_match), &mut grng);

        let instances: Vec<(&str, &Graph)> = vec![
            ("G(n,p) matched d", &gnp),
            ("power-law CL γ=2.5", &pl),
            ("clique chain", &chain),
            ("layered dense", &layered),
            ("barbell", &bar),
        ];

        outln!(
            ctx,
            "instances around n = {n}, matched mean degree ≈ {d_match:.0}; {trials} trials per cell"
        );
        outln!(ctx, "entries: mean rounds (completions/trials)\n");

        let mut headers = vec!["protocol".to_string()];
        headers.extend(
            instances
                .iter()
                .map(|(name, g)| format!("{name} (n={})", g.n())),
        );
        let mut table = Table::new(headers);

        for proto_name in ["eg-distributed", "decay"] {
            let mut row = vec![proto_name.to_string()];
            for (inst_name, g) in &instances {
                let cell_seed = point_seed(args.seed, &format!("wc/{proto_name}/{inst_name}"));
                let p_assumed = g.average_degree() / g.n() as f64;
                let outcomes: Vec<Option<u32>> = run_trials(trials, cell_seed, |i, _rng| {
                    let mut rng = child_rng(cell_seed, 1000 + i as u64);
                    let source = rng.below(g.n() as u64) as NodeId;
                    let mut proto: Box<dyn Protocol> = match proto_name {
                        "eg-distributed" => Box::new(EgDistributed::new(p_assumed)),
                        _ => Box::new(Decay::new()),
                    };
                    let cfg = RunConfig::for_graph(g.n())
                        .with_max_rounds(40_000)
                        .with_trace(TraceLevel::SummaryOnly);
                    let r = RunSpec::on_graph(g, source)
                        .with_config(cfg)
                        .run_with_rng(proto.as_mut(), &mut rng)
                        .into_single();
                    r.completed.then_some(r.rounds)
                });
                let rounds: Vec<f64> = outcomes.iter().flatten().map(|&r| r as f64).collect();
                let summary = radio_analysis::Summary::of(&rounds);
                let cell = match &summary {
                    Some(s) if rounds.len() == trials => fnum(s.mean, 0),
                    Some(s) => format!("{} ({}/{})", fnum(s.mean, 0), rounds.len(), trials),
                    None => format!("— (0/{trials})"),
                };
                report.push(
                    BenchPoint::new(&format!("{proto_name}/{inst_name}"))
                        .field("protocol", Json::from(proto_name))
                        .field("instance", Json::from(*inst_name))
                        .field("n", Json::from(g.n()))
                        .field(
                            "rounds",
                            summary.as_ref().map_or(Json::Null, summary_to_json),
                        )
                        .field("completed", Json::from(rounds.len()))
                        .field("trials", Json::from(trials)),
                );
                row.push(cell);
            }
            table.add_row(row);
        }

        outln!(ctx, "{}", table.render());
        outln!(ctx);
        outln!(
            ctx,
            "for scale: ln n = {:.1}; clique-chain diameter ≈ {} hops × Θ(log k) collision",
            (n as f64).ln(),
            2 * cliques
        );
        outln!(
            ctx,
            "resolution per hop is the structured cost the paper escapes by moving to"
        );
        outln!(
            ctx,
            "random graphs — where both protocols finish in Θ(ln n)."
        );
        report
    }
}
