//! Experiment E-T5 — Theorem 5 (centralized upper bound).
//!
//! Claim: with full topology knowledge, broadcast on `G(n, p)` completes in
//! `O(ln n / ln d + ln d)` rounds w.h.p.
//!
//! Method: sweep `n` over powers of two and `p` over four density regimes,
//! build the five-phase Elsässer–Gąsieniec schedule on connected samples,
//! and record its length.  The table reports the measured rounds against the
//! predicted scale `B(n,d) = ln n/ln d + ln d`; the fit at the bottom
//! estimates `rounds ≈ a·(ln n/ln d) + b·ln d + c`.  The claim holds if the
//! ratio column is bounded by a constant across regimes (no upward drift)
//! and the fit has high `R²` with moderate `a, b`.

#![allow(clippy::type_complexity)]

use radio_analysis::{fit_centralized_form, fnum, CsvWriter, Table};
use radio_broadcast::centralized::{build_eg_schedule, CentralizedParams};
use radio_broadcast::theory::centralized_bound;
use radio_graph::NodeId;
use radio_sim::Json;

use crate::common::{measure_custom, point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{protocol_point_to_json, BenchPoint, BenchReport};

/// Theorem 5: centralized upper bound.
pub struct T5;

impl Experiment for T5 {
    fn name(&self) -> &'static str {
        "t5"
    }
    fn banner_id(&self) -> &'static str {
        "E-T5"
    }
    fn claim(&self) -> &'static str {
        "centralized broadcast in O(ln n/ln d + ln d) rounds (Theorem 5)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^10..2^15"), ("regimes", "4"), ("trials", "12")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let exps: Vec<u32> = match () {
            _ if args.quick => vec![10, 12],
            _ if args.full => (10..=17).collect(),
            _ => (10..=15).collect(),
        };
        let ns: Vec<usize> = args.sizes(exps.iter().map(|&k| 1usize << k).collect());
        let trials = args.trials_or(args.scale(5, 12, 25));

        // Density regimes (name, p(n), max n for tractability).
        let regimes: Vec<(&str, fn(usize) -> f64, usize)> = vec![
            (
                "threshold 3ln n/n",
                |n| 3.0 * (n as f64).ln() / n as f64,
                usize::MAX,
            ),
            (
                "polylog ln²n/n",
                |n| (n as f64).ln().powi(2) / n as f64,
                usize::MAX,
            ),
            ("sqrt n^-1/2", |n| (n as f64).powf(-0.5), 1 << 15),
            ("const p=0.1", |_| 0.1, 1 << 13),
        ];

        let mut table = Table::new(vec![
            "regime", "n", "d(avg)", "rounds", "±sd", "B(n,d)", "rounds/B", "ok",
        ]);
        let mut csv = CsvWriter::new(&[
            "regime",
            "n",
            "p",
            "mean_degree",
            "mean_rounds",
            "sd_rounds",
            "bound",
            "completed",
            "trials",
        ]);
        let mut fit_points: Vec<(usize, f64, f64)> = Vec::new();

        for (name, pf, max_n) in &regimes {
            for &n in &ns {
                if n > *max_n {
                    continue;
                }
                let p = pf(n);
                let seed = point_seed(args.seed, &format!("t5/{name}/{n}"));
                let point = measure_custom(n, p, trials, seed, |rng| {
                    let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                        return (None, 0.0);
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let built = build_eg_schedule(&g, source, CentralizedParams::default(), rng);
                    (
                        built.completed.then_some(built.len() as u32),
                        g.average_degree(),
                    )
                });
                let Some(rounds) = &point.rounds else {
                    eprintln!("warning: no completed trials at {name}, n = {n}");
                    continue;
                };
                let d = point.mean_degree;
                let bound = centralized_bound(n, d);
                let ratio = rounds.mean / bound;
                table.add_row(vec![
                    name.to_string(),
                    n.to_string(),
                    fnum(d, 1),
                    fnum(rounds.mean, 1),
                    fnum(rounds.std_dev, 1),
                    fnum(bound, 1),
                    fnum(ratio, 2),
                    format!("{}/{}", point.completed, point.trials),
                ]);
                csv.add_row(&[
                    name.to_string(),
                    n.to_string(),
                    format!("{p}"),
                    format!("{d}"),
                    format!("{}", rounds.mean),
                    format!("{}", rounds.std_dev),
                    format!("{bound}"),
                    point.completed.to_string(),
                    point.trials.to_string(),
                ]);
                report.push(
                    protocol_point_to_json(&format!("{name}/n={n}"), &point)
                        .field("regime", Json::from(*name))
                        .field("bound", Json::from(bound))
                        .field("rounds_over_bound", Json::from(ratio)),
                );
                fit_points.push((n, d, rounds.mean));
            }
        }

        outln!(ctx, "{}", table.render());

        if let Some(fit) = fit_centralized_form(&fit_points) {
            outln!(ctx);
            outln!(
                ctx,
                "fit: rounds ≈ {:.2}·(ln n/ln d) + {:.2}·ln d + {:.2}   (R² = {:.3})",
                fit.a,
                fit.b,
                fit.c,
                fit.r_squared
            );
            outln!(
                ctx,
                "paper predicts rounds = Θ(ln n/ln d + ln d): coefficients a, b should be positive O(1) constants."
            );
            report.push(
                BenchPoint::new("fit")
                    .field("a", Json::from(fit.a))
                    .field("b", Json::from(fit.b))
                    .field("c", Json::from(fit.c))
                    .field("r_squared", Json::from(fit.r_squared)),
            );
        }
        write_csv("exp_t5", csv.finish());
        report
    }
}
