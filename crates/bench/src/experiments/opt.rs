//! Experiment E-OPT — greedy proxy vs the exact optimum on tiny instances.
//!
//! Experiment `E-T6` upper-bounds OPT with the greedy cover scheduler.  How
//! tight is that proxy?  On instances small enough for exhaustive search
//! (`n ≤ 14`), compute the true optimal schedule length by BFS over
//! knowledge states and compare.  If the greedy is within an additive
//! constant of OPT at these sizes (it is: ≤ +2, mostly +0/+1), quoting
//! `greedy/B` ratios at scale as "OPT is Θ(B)" is justified.
//!
//! Also reports where the paper's five-phase schedule lands on the same
//! instances — interestingly, the analyzable structure costs a few rounds
//! at toy sizes where there is no "giant layer" to exploit.

use radio_analysis::{fnum, proportion_ci, Table};
use radio_broadcast::centralized::{
    build_eg_schedule, exact_optimal_rounds, greedy_cover_schedule, CentralizedParams,
};
use radio_graph::components::is_connected;
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use radio_sim::{run_trials, Json};

use crate::common::point_seed;
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{BenchPoint, BenchReport};

/// Greedy OPT-proxy calibration on exhaustively solvable instances.
pub struct Opt;

impl Experiment for Opt {
    fn name(&self) -> &'static str {
        "opt"
    }
    fn banner_id(&self) -> &'static str {
        "E-OPT"
    }
    fn claim(&self) -> &'static str {
        "the greedy OPT-proxy is within +2 of the exact optimum on exhaustive instances"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "8..14"), ("p", "0.25..0.6"), ("trials", "400")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let trials = args.trials_or(args.scale(100, 400, 1500));
        // Exhaustive search caps n at 14 regardless of any --n override.
        let sizes = [8usize, 10, 12, 14];
        let densities = [0.25, 0.4, 0.6];

        let mut table = Table::new(vec![
            "n",
            "p",
            "instances",
            "mean OPT",
            "mean greedy",
            "gap=0",
            "gap=1",
            "gap≥2",
            "max gap",
        ]);

        for &n in &sizes {
            for &p in &densities {
                let seed = point_seed(args.seed, &format!("opt/{n}/{p}"));
                // Each trial: sample a connected instance, solve exactly, run
                // greedy; report (opt, greedy).
                let results: Vec<Option<(u32, u32)>> = run_trials(trials, seed, |_i, rng| {
                    let g = sample_gnp(n, p, rng);
                    if !is_connected(&g) {
                        return None;
                    }
                    let opt = exact_optimal_rounds(&g, 0)?;
                    let mut grng = Xoshiro256pp::new(rng.next());
                    let greedy = greedy_cover_schedule(&g, 0, 1000, &mut grng);
                    debug_assert!(greedy.completed);
                    Some((opt, greedy.len() as u32))
                });
                let pairs: Vec<(u32, u32)> = results.into_iter().flatten().collect();
                if pairs.is_empty() {
                    continue;
                }
                let count = pairs.len();
                let mean_opt = pairs.iter().map(|&(o, _)| o as f64).sum::<f64>() / count as f64;
                let mean_greedy = pairs.iter().map(|&(_, g)| g as f64).sum::<f64>() / count as f64;
                let gap0 = pairs.iter().filter(|&&(o, g)| g == o).count();
                let gap1 = pairs.iter().filter(|&&(o, g)| g == o + 1).count();
                let gap2 = pairs.iter().filter(|&&(o, g)| g >= o + 2).count();
                let max_gap = pairs.iter().map(|&(o, g)| g - o).max().unwrap();
                table.add_row(vec![
                    n.to_string(),
                    fnum(p, 2),
                    count.to_string(),
                    fnum(mean_opt, 2),
                    fnum(mean_greedy, 2),
                    fnum(gap0 as f64 / count as f64, 3),
                    fnum(gap1 as f64 / count as f64, 3),
                    fnum(gap2 as f64 / count as f64, 3),
                    max_gap.to_string(),
                ]);
                report.push(
                    BenchPoint::new(&format!("n={n}/p={p}"))
                        .field("n", Json::from(n))
                        .field("p", Json::from(p))
                        .field("instances", Json::from(count))
                        .field("mean_opt", Json::from(mean_opt))
                        .field("mean_greedy", Json::from(mean_greedy))
                        .field("gap0_frac", Json::from(gap0 as f64 / count as f64))
                        .field("gap1_frac", Json::from(gap1 as f64 / count as f64))
                        .field("gap2_frac", Json::from(gap2 as f64 / count as f64))
                        .field("max_gap", Json::from(max_gap)),
                );
            }
        }
        outln!(ctx, "{}", table.render());

        // Bonus row: the five-phase schedule at toy scale.
        outln!(
            ctx,
            "\n## Five-phase (Theorem 5) schedule at toy scale, n = 14, p = 0.4\n"
        );
        let seed = point_seed(args.seed, "opt/eg");
        let results: Vec<Option<(u32, u32)>> = run_trials(trials.min(300), seed, |_i, rng| {
            let g = sample_gnp(14, 0.4, rng);
            if !is_connected(&g) {
                return None;
            }
            let opt = exact_optimal_rounds(&g, 0)?;
            let mut grng = Xoshiro256pp::new(rng.next());
            let eg = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut grng);
            eg.completed.then_some((opt, eg.len() as u32))
        });
        let pairs: Vec<(u32, u32)> = results.into_iter().flatten().collect();
        if !pairs.is_empty() {
            let within3 = pairs.iter().filter(|&&(o, g)| g <= o + 3).count();
            let ci = proportion_ci(within3, pairs.len()).unwrap();
            let mean_opt = pairs.iter().map(|&(o, _)| o as f64).sum::<f64>() / pairs.len() as f64;
            let mean_eg = pairs.iter().map(|&(_, g)| g as f64).sum::<f64>() / pairs.len() as f64;
            outln!(
                ctx,
                "mean OPT {:.2}, mean five-phase {:.2}; within +3 of OPT on {:.0}% of instances [{:.0}%, {:.0}%]",
                mean_opt,
                mean_eg,
                100.0 * ci.estimate,
                100.0 * ci.lo,
                100.0 * ci.hi
            );
            report.push(
                BenchPoint::new("five_phase_toy")
                    .field("instances", Json::from(pairs.len()))
                    .field("mean_opt", Json::from(mean_opt))
                    .field("mean_eg", Json::from(mean_eg))
                    .field("within3_rate", Json::from(ci.estimate)),
            );
        }
        outln!(ctx);
        outln!(
            ctx,
            "reading: the greedy proxy equals OPT on most instances and never trails by"
        );
        outln!(
            ctx,
            "more than a small constant — so greedy round counts at scale faithfully"
        );
        outln!(
            ctx,
            "track OPT, which is what E-T6's sandwich argument needs."
        );
        report
    }
}
