//! Experiment E-T6 — Theorem 6 (centralized lower bound).
//!
//! Claim: even with full topology knowledge, no schedule broadcasts on
//! `G(n, p)` in `o(ln n / ln d + ln d)` rounds, w.h.p.
//!
//! Method, following the proof's structure:
//!
//! 1. **Normal-form ensembles.** The proof reduces any short schedule to a
//!    normal form (dense case `p = 1/2`: pairwise disjoint sets of size ≤ 2;
//!    sparse case: sets of size ≤ n/d) and shows each such schedule leaves a
//!    node uninformed w.h.p. under a *relaxed* reception rule that favors
//!    the adversary.  We sample many normal-form schedules of length
//!    `c · B(n,d)` (where `B = ln n/ln d + ln d` is the upper-bound scale)
//!    for a grid of `c` and report the completion probability — it must be
//!    ≈ 0 for `c` below a constant and rise toward 1 well above it.
//! 2. **Best-effort schedule.** A greedy cover scheduler (an upper bound on
//!    OPT) is run on the same instances; its round count stays *above* a
//!    constant multiple of `B(n, d)`, locating OPT between the two.

use radio_analysis::{fnum, proportion_ci, CsvWriter, Summary, Table};
use radio_broadcast::centralized::greedy_cover_schedule;
use radio_broadcast::lower_bound::{run_relaxed, sample_bounded_sets, sample_disjoint_small_sets};
use radio_broadcast::theory::centralized_bound;
use radio_graph::{child_rng, gnp::sample_gnp, NodeId, Xoshiro256pp};
use radio_sim::run_trials;
use radio_sim::Json;

use crate::common::{point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{summary_to_json, BenchPoint, BenchReport};

/// Theorem 6: centralized lower bound.
pub struct T6;

impl Experiment for T6 {
    fn name(&self) -> &'static str {
        "t6"
    }
    fn banner_id(&self) -> &'static str {
        "E-T6"
    }
    fn claim(&self) -> &'static str {
        "no centralized schedule completes in o(ln n/ln d + ln d) rounds (Theorem 6)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "512/4096"), ("schedules", "2000")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let schedules_per_point = args.trials_or(args.scale(200, 2000, 10_000));

        // ---- Part 1a: dense case, p = 1/2, disjoint sets of size ≤ 2 ---------
        outln!(
            ctx,
            "## Dense case p = 1/2 — random normal-form schedules (disjoint sets, |S| ≤ 2)\n"
        );
        let n_dense = args.size(args.scale(256, 512, 1024));
        let g_seed = point_seed(args.seed, "t6/dense/graph");
        let g = sample_gnp(n_dense, 0.5, &mut Xoshiro256pp::new(g_seed));
        let d = g.average_degree();
        let bound = centralized_bound(n_dense, d);

        let mut table = Table::new(vec![
            "c",
            "rounds",
            "completion rate",
            "95% CI",
            "mean uninformed",
        ]);
        let mut csv = CsvWriter::new(&[
            "case",
            "n",
            "c",
            "rounds",
            "completions",
            "trials",
            "mean_uninformed",
        ]);
        for &c in &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let rounds = ((c * bound).ceil() as usize).max(1).min(n_dense / 2);
            let seed = point_seed(args.seed, &format!("t6/dense/{c}"));
            let outcomes: Vec<(bool, usize)> = run_trials(schedules_per_point, seed, |_i, rng| {
                let sched = sample_disjoint_small_sets(n_dense, rounds, rng);
                let r = run_relaxed(&g, 0, &sched);
                (r.completed, r.n - r.informed)
            });
            let completions = outcomes.iter().filter(|&&(c, _)| c).count();
            let mean_uninf =
                outcomes.iter().map(|&(_, u)| u as f64).sum::<f64>() / outcomes.len() as f64;
            let ci = proportion_ci(completions, outcomes.len()).unwrap();
            table.add_row(vec![
                fnum(c, 1),
                rounds.to_string(),
                fnum(ci.estimate, 4),
                format!("[{:.4}, {:.4}]", ci.lo, ci.hi),
                fnum(mean_uninf, 2),
            ]);
            csv.add_row(&[
                "dense".to_string(),
                n_dense.to_string(),
                format!("{c}"),
                rounds.to_string(),
                completions.to_string(),
                outcomes.len().to_string(),
                format!("{mean_uninf}"),
            ]);
            report.push(
                BenchPoint::new(&format!("dense/c={c}"))
                    .field("n", Json::from(n_dense))
                    .field("c", Json::from(c))
                    .field("rounds", Json::from(rounds))
                    .field("completion_rate", Json::from(ci.estimate))
                    .field("ci_lo", Json::from(ci.lo))
                    .field("ci_hi", Json::from(ci.hi))
                    .field("mean_uninformed", Json::from(mean_uninf))
                    .field("trials", Json::from(outcomes.len())),
            );
        }
        outln!(
            ctx,
            "n = {n_dense}, d̄ = {d:.1}, B(n,d) = {bound:.1} rounds\n"
        );
        outln!(ctx, "{}", table.render());

        // ---- Part 1b: sparse case, sets of size ≤ n/d -------------------------
        outln!(ctx, "\n## Sparse case — random schedules with |S| ≤ n/d\n");
        let n_sparse = args.size(args.scale(1 << 10, 1 << 12, 1 << 14));
        let p_sparse = (n_sparse as f64).ln().powi(2) / n_sparse as f64;
        let gs_seed = point_seed(args.seed, "t6/sparse/graph");
        let gs = sample_gnp(n_sparse, p_sparse, &mut Xoshiro256pp::new(gs_seed));
        let ds = gs.average_degree();
        let bounds = centralized_bound(n_sparse, ds);
        let max_set = ((n_sparse as f64 / ds) as usize).max(2);

        let mut table2 = Table::new(vec![
            "c",
            "rounds",
            "completion rate",
            "95% CI",
            "mean uninformed",
        ]);
        // The sparse sets are bigger, so run a quarter of the schedules —
        // but never zero (smoke grids use --trials 1).
        let sparse_schedules = (schedules_per_point / 4).max(1);
        for &c in &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let rounds = ((c * bounds).ceil() as usize).max(1);
            let seed = point_seed(args.seed, &format!("t6/sparse/{c}"));
            let outcomes: Vec<(bool, usize)> = run_trials(sparse_schedules, seed, |_i, rng| {
                let sched = sample_bounded_sets(n_sparse, rounds, max_set, rng);
                let r = run_relaxed(&gs, 0, &sched);
                (r.completed, r.n - r.informed)
            });
            let completions = outcomes.iter().filter(|&&(c, _)| c).count();
            let mean_uninf =
                outcomes.iter().map(|&(_, u)| u as f64).sum::<f64>() / outcomes.len() as f64;
            let ci = proportion_ci(completions, outcomes.len()).unwrap();
            table2.add_row(vec![
                fnum(c, 1),
                rounds.to_string(),
                fnum(ci.estimate, 4),
                format!("[{:.4}, {:.4}]", ci.lo, ci.hi),
                fnum(mean_uninf, 2),
            ]);
            csv.add_row(&[
                "sparse".to_string(),
                n_sparse.to_string(),
                format!("{c}"),
                rounds.to_string(),
                completions.to_string(),
                sparse_schedules.to_string(),
                format!("{mean_uninf}"),
            ]);
            report.push(
                BenchPoint::new(&format!("sparse/c={c}"))
                    .field("n", Json::from(n_sparse))
                    .field("c", Json::from(c))
                    .field("rounds", Json::from(rounds))
                    .field("completion_rate", Json::from(ci.estimate))
                    .field("ci_lo", Json::from(ci.lo))
                    .field("ci_hi", Json::from(ci.hi))
                    .field("mean_uninformed", Json::from(mean_uninf))
                    .field("trials", Json::from(sparse_schedules)),
            );
        }
        outln!(
            ctx,
            "n = {n_sparse}, d̄ = {ds:.1}, B(n,d) = {bounds:.1}, |S| ≤ {max_set}\n"
        );
        outln!(ctx, "{}", table2.render());

        // ---- Part 2: best-effort greedy schedule vs the bound -----------------
        outln!(
            ctx,
            "\n## Greedy best-effort schedule (upper bound on OPT) vs B(n,d)\n"
        );
        let mut table3 = Table::new(vec![
            "n",
            "d(avg)",
            "greedy rounds",
            "±sd",
            "B(n,d)",
            "greedy/B",
        ]);
        let greedy_trials = args.scale(3, 8, 15);
        let exps: Vec<u32> = args.scale(vec![10, 11], vec![10, 12, 14], vec![10, 12, 14, 16]);
        let ns: Vec<usize> = args.sizes(exps.iter().map(|&k| 1usize << k).collect());
        for &n in &ns {
            let p = (n as f64).ln().powi(2) / n as f64;
            let seed = point_seed(args.seed, &format!("t6/greedy/{n}"));
            let rounds: Vec<f64> = run_trials(greedy_trials, seed, |_i, rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return f64::NAN;
                };
                let source = rng.below(n as u64) as NodeId;
                let built = greedy_cover_schedule(&g, source, 100_000, rng);
                if built.completed {
                    built.len() as f64
                } else {
                    f64::NAN
                }
            })
            .into_iter()
            .filter(|x| x.is_finite())
            .collect();
            let Some(s) = Summary::of(&rounds) else {
                continue;
            };
            // Realized degree from one sample for the bound column.
            let mut rng = child_rng(seed, 999);
            let d = sample_gnp(n, p, &mut rng).average_degree();
            let b = centralized_bound(n, d);
            table3.add_row(vec![
                n.to_string(),
                fnum(d, 1),
                fnum(s.mean, 1),
                fnum(s.std_dev, 1),
                fnum(b, 1),
                fnum(s.mean / b, 2),
            ]);
            report.push(
                BenchPoint::new(&format!("greedy/n={n}"))
                    .field("n", Json::from(n))
                    .field("mean_degree", Json::from(d))
                    .field("rounds", summary_to_json(&s))
                    .field("bound", Json::from(b))
                    .field("rounds_over_bound", Json::from(s.mean / b)),
            );
        }
        outln!(ctx, "{}", table3.render());
        outln!(
            ctx,
            "\nreading: completion probability ≈ 0 for c ≲ 4 (schedules an order of"
        );
        outln!(
            ctx,
            "magnitude longer than B still fail), and even the greedy OPT proxy needs"
        );
        outln!(
            ctx,
            "a constant multiple of B — OPT is sandwiched within Θ(ln n/ln d + ln d)."
        );
        write_csv("exp_t6", csv.finish());
        report
    }
}
