//! Experiment E-T8 — Theorem 8 (distributed lower bound).
//!
//! Claim: any protocol whose nodes know only `n`, `p`, and the time `t`
//! needs `Ω(ln n)` rounds to broadcast on `G(n, p)` w.h.p.
//!
//! Method: such protocols are exactly the *probability profiles*
//! `q : t ↦ [0,1]` (every informed node transmits with probability `q(t)`).
//! We sweep structured profile families (constant `q`, geometric decay, the
//! EG protocol's own profile) and a batch of random log-uniform profiles,
//! truncate each run at `c·ln n` rounds for a grid of `c`, and report the
//! completion probability.  The theorem predicts completion probability
//! ≈ 0 for every profile when `c` is a small constant, regardless of how
//! the profile is tuned.

#![allow(clippy::type_complexity)]

use radio_analysis::{fnum, proportion_ci, CsvWriter, Table};
use radio_broadcast::lower_bound::{eg_profile, ProbabilityProfile};
use radio_graph::NodeId;
use radio_sim::{run_trials, Json, RunConfig, RunSpec, TraceLevel};

use crate::common::{point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{BenchPoint, BenchReport};

/// Theorem 8: distributed lower bound.
pub struct T8;

impl Experiment for T8 {
    fn name(&self) -> &'static str {
        "t8"
    }
    fn banner_id(&self) -> &'static str {
        "E-T8"
    }
    fn claim(&self) -> &'static str {
        "no oblivious protocol completes in o(ln n) rounds (Theorem 8)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^13"), ("profiles", "6"), ("trials", "100")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 11, 1 << 13, 1 << 15));
        let p = (n as f64).ln().powi(2) / n as f64;
        let d = p * n as f64;
        let ln_n = (n as f64).ln();
        let trials = args.trials_or(args.scale(30, 100, 300));

        let horizon_cs = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

        // Profile family: (label, constructor given a seed).
        let families: Vec<(String, Box<dyn Fn(u64) -> ProbabilityProfile + Sync>)> = vec![
            (
                "const q=1/d".into(),
                Box::new(move |_| ProbabilityProfile::constant(1.0 / d)),
            ),
            (
                "const q=4/d".into(),
                Box::new(move |_| ProbabilityProfile::constant((4.0 / d).min(1.0))),
            ),
            (
                "const q=1/√d".into(),
                Box::new(move |_| ProbabilityProfile::constant(1.0 / d.sqrt())),
            ),
            (
                "geometric 1→1/d²".into(),
                Box::new(move |_| ProbabilityProfile::geometric(1.0, 0.7, 1.0 / (d * d), 200)),
            ),
            ("eg-profile".into(), Box::new(move |_| eg_profile(n, p))),
            (
                "random log-uniform".into(),
                Box::new(move |seed| {
                    let mut rng = radio_graph::Xoshiro256pp::new(seed);
                    ProbabilityProfile::random(1.0 / (d * d), 400, &mut rng)
                }),
            ),
        ];

        outln!(
            ctx,
            "n = {n}, d = {d:.1}, ln n = {ln_n:.1}; entries are completion rates within c·ln n rounds\n"
        );

        let mut headers = vec!["profile".to_string()];
        headers.extend(horizon_cs.iter().map(|c| format!("c={c}")));
        let mut table = Table::new(headers);
        let mut csv = CsvWriter::new(&["profile", "c", "horizon", "completions", "trials"]);

        for (label, make) in &families {
            let mut row = vec![label.clone()];
            for &c in &horizon_cs {
                let horizon = ((c * ln_n).ceil() as u32).max(1);
                let seed = point_seed(args.seed, &format!("t8/{label}/{c}"));
                let completions = run_trials(trials, seed, |i, rng| {
                    let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                        return false;
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let mut prof = make(seed ^ (i as u64).wrapping_mul(0x9E37));
                    let cfg = RunConfig::for_graph(n)
                        .with_max_rounds(horizon)
                        .with_trace(TraceLevel::SummaryOnly);
                    RunSpec::on_graph(&g, source)
                        .with_config(cfg)
                        .run_with_rng(&mut prof, rng)
                        .into_single()
                        .completed
                })
                .into_iter()
                .filter(|&x| x)
                .count();
                let ci = proportion_ci(completions, trials).unwrap();
                row.push(fnum(ci.estimate, 3));
                csv.add_row(&[
                    label.clone(),
                    format!("{c}"),
                    horizon.to_string(),
                    completions.to_string(),
                    trials.to_string(),
                ]);
                report.push(
                    BenchPoint::new(&format!("{label}/c={c}"))
                        .field("profile", Json::from(label.as_str()))
                        .field("c", Json::from(c))
                        .field("horizon", Json::from(horizon))
                        .field("completion_rate", Json::from(ci.estimate))
                        .field("completions", Json::from(completions))
                        .field("trials", Json::from(trials)),
                );
            }
            table.add_row(row);
        }

        outln!(ctx, "{}", table.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: every oblivious profile — including the paper's own protocol and"
        );
        outln!(
            ctx,
            "tuned constants — has completion rate ≈ 0 for c ≤ 1 and needs c = Θ(1)·ln n"
        );
        outln!(ctx, "rounds to reach rate ≈ 1, matching the Ω(ln n) bound.");
        write_csv("exp_t8", csv.finish());
        report
    }
}
