//! Experiment E-USH — the U-shape of the centralized bound.
//!
//! The Theorem-5/6 round complexity `B(d) = ln n/ln d + ln d` at fixed `n`
//! is U-shaped in `d`: the diameter term falls as the graph densifies while
//! the cover term rises, with the minimum `2√(ln n)` at `ln d = √(ln n)`.
//! This is the paper's qualitative message about *where radio broadcast is
//! cheap*: neither very sparse nor very dense random networks are optimal.
//!
//! Method: fix `n`, sweep `d` geometrically through the predicted optimum,
//! build the centralized schedule, and tabulate measured rounds against
//! `B(d)`.  The measured column must fall then rise, with its minimum within
//! a factor-2 window of `d* = e^{√(ln n)}`.

use radio_analysis::{fnum, AsciiPlot, CsvWriter, Table};
use radio_broadcast::centralized::{build_eg_schedule, CentralizedParams};
use radio_broadcast::theory::{centralized_bound, optimal_degree};
use radio_graph::NodeId;
use radio_sim::Json;

use crate::common::{measure_custom, point_seed, sample_connected_gnp, write_csv};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{protocol_point_to_json, BenchPoint, BenchReport};

/// U-shape of the centralized bound in d.
pub struct Ushape;

impl Experiment for Ushape {
    fn name(&self) -> &'static str {
        "ushape"
    }
    fn banner_id(&self) -> &'static str {
        "E-USH"
    }
    fn claim(&self) -> &'static str {
        "rounds vs d at fixed n is U-shaped with minimum near d* = e^√(ln n)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^14"), ("d", "geometric sweep"), ("trials", "10")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 12, 1 << 14, 1 << 16));
        let trials = args.trials_or(args.scale(4, 10, 25));
        let d_star = optimal_degree(n);
        let ln_n = (n as f64).ln();

        // Sweep from near-threshold to dense, through d*.
        let d_min = (1.3 * ln_n).max(4.0);
        let d_max = (n as f64 / 8.0).min(d_star * d_star);
        let steps = args.scale(5, 9, 13);
        let ratio = (d_max / d_min).powf(1.0 / (steps - 1) as f64);
        let degrees: Vec<f64> = (0..steps).map(|i| d_min * ratio.powi(i)).collect();

        outln!(
            ctx,
            "n = {n}, ln n = {ln_n:.1}, predicted optimum d* = {d_star:.1}, predicted minimum B = {:.1}\n",
            2.0 * ln_n.sqrt()
        );

        let mut table = Table::new(vec!["d", "ln d", "rounds", "±sd", "B(n,d)", "rounds/B"]);
        let mut csv = CsvWriter::new(&["d", "mean_rounds", "sd", "bound"]);
        let mut best: Option<(f64, f64)> = None; // (d, rounds)
        let mut curve: Vec<(f64, f64)> = Vec::new();
        let mut bound_curve: Vec<(f64, f64)> = Vec::new();

        for &d in &degrees {
            let p = (d / n as f64).min(0.5);
            let seed = point_seed(args.seed, &format!("ushape/{d}"));
            let point = measure_custom(n, p, trials, seed, |rng| {
                let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                    return (None, 0.0);
                };
                let source = rng.below(n as u64) as NodeId;
                let built = build_eg_schedule(&g, source, CentralizedParams::default(), rng);
                (
                    built.completed.then_some(built.len() as u32),
                    g.average_degree(),
                )
            });
            let Some(rounds) = &point.rounds else {
                continue;
            };
            let b = centralized_bound(n, point.mean_degree);
            if best.is_none_or(|(_, r)| rounds.mean < r) {
                best = Some((point.mean_degree, rounds.mean));
            }
            table.add_row(vec![
                fnum(point.mean_degree, 1),
                fnum(point.mean_degree.ln(), 2),
                fnum(rounds.mean, 1),
                fnum(rounds.std_dev, 1),
                fnum(b, 1),
                fnum(rounds.mean / b, 2),
            ]);
            csv.add_row(&[
                format!("{}", point.mean_degree),
                format!("{}", rounds.mean),
                format!("{}", rounds.std_dev),
                format!("{b}"),
            ]);
            report.push(
                protocol_point_to_json(&format!("d={:.1}", point.mean_degree), &point)
                    .field("bound", Json::from(b))
                    .field("rounds_over_bound", Json::from(rounds.mean / b)),
            );
            curve.push((point.mean_degree, rounds.mean));
            bound_curve.push((point.mean_degree, b));
        }

        outln!(ctx, "{}", table.render());

        // Terminal figure: measured rounds (*) and B(n,d) (o) on a log-d axis.
        let mut plot = AsciiPlot::new(64, 14)
            .with_labels("d (log scale)", "rounds: * measured, o bound B(n,d)")
            .with_log_x();
        plot.add_series('*', &curve);
        plot.add_series('o', &bound_curve);
        outln!(ctx, "\n{}", plot.render());
        if let Some((d_best, r_best)) = best {
            outln!(ctx);
            outln!(
                ctx,
                "measured minimum: {r_best:.1} rounds at d ≈ {d_best:.1} (predicted d* = {d_star:.1}; √(ln n) scale minimum = {:.1})",
                2.0 * ln_n.sqrt()
            );
            report.push(
                BenchPoint::new("minimum")
                    .field("d_best", Json::from(d_best))
                    .field("rounds_best", Json::from(r_best))
                    .field("d_star_predicted", Json::from(d_star)),
            );
        }
        outln!(
            ctx,
            "reading: measured rounds first fall (diameter term shrinks) then rise"
        );
        outln!(ctx, "(cover term grows) — the U-shape of ln n/ln d + ln d.");
        write_csv("exp_ushape", csv.finish());
        report
    }
}
