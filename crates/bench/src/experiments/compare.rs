//! Experiment E-CMP — protocol comparison across densities (§1.2 related
//! work).
//!
//! Puts the paper's distributed protocol next to the baselines its
//! related-work section discusses, at fixed `n` across a sweep of expected
//! degrees `d`:
//!
//! * **eg-distributed** — Theorem 7, `O(ln n)`;
//! * **eg-unknown-p** — guess-doubling variant that is never told `p`
//!   (extension; pays roughly a log factor for the missing knowledge);
//! * **decay** — Bar-Yehuda–Goldreich–Itai, `O((D + log n)·log n)` on
//!   arbitrary graphs;
//! * **selective-family** — deterministic worst-case-style broadcast,
//!   period `O(Δ² log n / log Δ)`;
//! * **round-robin** — trivial deterministic, `O(n·D)`;
//! * **flooding** — no collision avoidance at all;
//! * **push-gossip** — rumor spreading in the *single-port* model (not a
//!   radio protocol; shown to compare collision cost against a
//!   collision-free model).
//!
//! Expected shape: EG ≈ gossip ≈ Θ(ln n) and flat in `d`; Decay a log
//! factor above and growing slowly; round-robin and selective-family orders
//! of magnitude above; flooding completes only at the sparse end and fails
//! (rate 0) once `d` is large.

use radio_analysis::{fnum, CsvWriter, Table};
use radio_broadcast::distributed::{
    run_push_gossip, Decay, EgDistributed, EgUnknownDegree, Flooding, RoundRobin,
    SelectiveBroadcast,
};
use radio_graph::NodeId;
use radio_sim::{Json, TraceLevel};

use crate::common::{
    measure_custom, measure_protocol, point_seed, sample_connected_gnp, write_csv,
};
use crate::outln;
use crate::registry::{ExpContext, Experiment};
use crate::report::{BenchPoint, BenchReport};

/// §1.2 related work: protocol comparison across densities.
pub struct Compare;

impl Experiment for Compare {
    fn name(&self) -> &'static str {
        "compare"
    }
    fn banner_id(&self) -> &'static str {
        "E-CMP"
    }
    fn claim(&self) -> &'static str {
        "protocol comparison at fixed n across densities (related-work §1.2)"
    }
    fn default_grid(&self) -> Vec<(&'static str, &'static str)> {
        vec![("n", "2^12"), ("protocols", "7"), ("trials", "15")]
    }

    fn run(&self, ctx: &ExpContext) -> BenchReport {
        let args = &ctx.args;
        let mut report = BenchReport::new(self.name(), self.claim(), args.mode(), args.seed);

        let n = args.size(args.scale(1 << 10, 1 << 12, 1 << 14));
        let trials = args.trials_or(args.scale(5, 15, 40));
        let degrees: Vec<f64> = args.scale(
            vec![12.0, 48.0],
            vec![12.0, 24.0, 48.0, 96.0, 192.0],
            vec![12.0, 24.0, 48.0, 96.0, 192.0, 384.0, 768.0],
        );

        outln!(
            ctx,
            "n = {n}, {trials} trials per cell; entries are mean rounds to completion"
        );
        outln!(
            ctx,
            "(`—` = completion rate 0 within the budget; rate shown when fractional)\n"
        );

        let mut headers = vec!["protocol".to_string()];
        headers.extend(degrees.iter().map(|d| format!("d={d}")));
        let mut table = Table::new(headers);
        let mut csv = CsvWriter::new(&["protocol", "d", "mean_rounds", "completed", "trials"]);

        type Cell = (Option<f64>, usize);
        let run_cell = |proto: &str, d: f64| -> Cell {
            let p = d / n as f64;
            let seed = point_seed(args.seed, &format!("cmp/{proto}/{d}"));
            let point = match proto {
                "eg-distributed" => measure_protocol(n, p, trials, seed, || EgDistributed::new(p)),
                "decay" => measure_protocol(n, p, trials, seed, Decay::new),
                "eg-unknown-p" => measure_protocol(n, p, trials, seed, EgUnknownDegree::new),
                "flooding" => measure_protocol(n, p, trials, seed, || Flooding),
                "round-robin" => measure_custom(n, p, trials, seed, |rng| {
                    use radio_sim::{RunConfig, RunSpec};
                    let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                        return (None, 0.0);
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let mut proto = RoundRobin::default();
                    // Round-robin needs Θ(n·D) rounds: budget accordingly.
                    let cfg = RunConfig::for_graph(n)
                        .with_max_rounds((n as u32).saturating_mul(24))
                        .with_trace(TraceLevel::SummaryOnly);
                    let r = RunSpec::on_graph(&g, source)
                        .with_config(cfg)
                        .run_with_rng(&mut proto, rng)
                        .into_single();
                    (r.completed.then_some(r.rounds), g.average_degree())
                }),
                "selective-family" => measure_custom(n, p, trials, seed, |rng| {
                    use radio_sim::{RunConfig, RunSpec};
                    let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                        return (None, 0.0);
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap_or(1);
                    let mut proto = SelectiveBroadcast::for_degree_bound(n, max_deg + 1);
                    let period = proto.family().len() as u32;
                    let cfg = RunConfig::for_graph(n)
                        .with_max_rounds(period.saturating_mul(40))
                        .with_trace(TraceLevel::SummaryOnly);
                    let r = RunSpec::on_graph(&g, source)
                        .with_config(cfg)
                        .run_with_rng(&mut proto, rng)
                        .into_single();
                    (r.completed.then_some(r.rounds), g.average_degree())
                }),
                "push-gossip" => measure_custom(n, p, trials, seed, |rng| {
                    let Some((g, _)) = sample_connected_gnp(n, p, rng, 50) else {
                        return (None, 0.0);
                    };
                    let source = rng.below(n as u64) as NodeId;
                    let r = run_push_gossip(&g, source, 64 * 20, TraceLevel::SummaryOnly, rng);
                    (r.completed.then_some(r.rounds), g.average_degree())
                }),
                _ => unreachable!(),
            };
            (point.rounds.as_ref().map(|s| s.mean), point.completed)
        };

        let protocols = [
            "eg-distributed",
            "eg-unknown-p",
            "decay",
            "push-gossip",
            "selective-family",
            "round-robin",
            "flooding",
        ];
        // Selective family and round-robin get too slow at high degree; cap the
        // degrees they run at.
        let slow_cap = args.scale(48.0, 96.0, 192.0);

        for proto in &protocols {
            let mut row = vec![proto.to_string()];
            for &d in &degrees {
                if (*proto == "round-robin" || *proto == "selective-family") && d > slow_cap {
                    row.push("(skip)".to_string());
                    continue;
                }
                let (mean, completed) = run_cell(proto, d);
                let cell = match mean {
                    Some(m) if completed == trials => fnum(m, 0),
                    Some(m) => format!("{} ({}/{})", fnum(m, 0), completed, trials),
                    None => "—".to_string(),
                };
                csv.add_row(&[
                    proto.to_string(),
                    format!("{d}"),
                    mean.map(|m| format!("{m}")).unwrap_or_default(),
                    completed.to_string(),
                    trials.to_string(),
                ]);
                report.push(
                    BenchPoint::new(&format!("{proto}/d={d}"))
                        .field("protocol", Json::from(*proto))
                        .field("d", Json::from(d))
                        .field("mean_rounds", mean.map_or(Json::Null, Json::from))
                        .field("completed", Json::from(completed))
                        .field("trials", Json::from(trials)),
                );
                row.push(cell);
            }
            table.add_row(row);
        }

        outln!(ctx, "{}", table.render());
        outln!(ctx);
        outln!(
            ctx,
            "reading: eg-distributed is flat at Θ(ln n) across densities and within a"
        );
        outln!(
            ctx,
            "small factor of collision-free push gossip; decay pays its extra log factor;"
        );
        outln!(
            ctx,
            "round-robin/selective-family are orders of magnitude slower; flooding"
        );
        outln!(
            ctx,
            "completes only on sparse near-tree frontiers and collapses as d grows."
        );
        write_csv("exp_compare", csv.finish());
        report
    }
}
