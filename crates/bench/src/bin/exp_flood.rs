//! Deprecated alias for `radio-bench run flood`.
//!
//! Kept so existing scripts and muscle memory keep working; the experiment
//! itself lives in `radio_bench::experiments::flood` and this binary takes
//! the same flags as the registry driver.

fn main() {
    radio_bench::registry::run_named("flood");
}
