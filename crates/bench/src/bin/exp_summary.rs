//! Deprecated alias for `radio-bench run summary`.
//!
//! Kept so existing scripts and muscle memory keep working; the experiment
//! itself lives in `radio_bench::experiments::summary` and this binary takes
//! the same flags as the registry driver.

fn main() {
    radio_bench::registry::run_named("summary");
}
