//! # radio-bench
//!
//! Experiment harness for the `radio-rs` reproduction of Elsässer &
//! Gąsieniec, *Radio communication in random graphs*.
//!
//! The paper is a theory extended abstract with no tables or figures; the
//! experiment suite (one binary per claim, see `src/bin/`) regenerates an
//! empirical validation table for each theorem and lemma — see DESIGN.md §6
//! for the index and EXPERIMENTS.md for recorded results.
//!
//! This library crate holds the shared experiment plumbing
//! ([`common`]); the binaries are thin drivers over it.

#![warn(missing_docs)]

pub mod common;
