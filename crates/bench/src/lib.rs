//! # radio-bench
//!
//! Experiment harness for the `radio-rs` reproduction of Elsässer &
//! Gąsieniec, *Radio communication in random graphs*.
//!
//! The paper is a theory extended abstract with no tables or figures; the
//! experiment suite (one binary per claim, see `src/bin/`) regenerates an
//! empirical validation table for each theorem and lemma — see DESIGN.md §6
//! for the index and EXPERIMENTS.md for recorded results.
//!
//! This library crate holds the shared experiment plumbing ([`common`]),
//! the hand-rolled micro-benchmark harness ([`harness`]) driving
//! `benches/*.rs`, and the versioned JSON bench-report schema ([`report`]);
//! the binaries are thin drivers over it.  Every binary accepts
//! `--json <path>` (or `RADIO_JSON_OUT=<path>`) to emit its results as a
//! machine-readable [`report::BenchReport`] alongside the ASCII tables —
//! see `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod common;
pub mod harness;
pub mod report;
