//! # radio-bench
//!
//! Experiment harness for the `radio-rs` reproduction of Elsässer &
//! Gąsieniec, *Radio communication in random graphs*.
//!
//! The paper is a theory extended abstract with no tables or figures; the
//! experiment suite regenerates an empirical validation table for each
//! theorem and lemma — see DESIGN.md §6 for the index and EXPERIMENTS.md
//! for recorded results.
//!
//! The suite is organised as a declarative **experiment registry**: each
//! experiment is a module in [`experiments`] implementing the
//! [`registry::Experiment`] trait (name, claim, default grid, run), and the
//! `radio-bench` binary is the single driver over the registry:
//!
//! ```text
//! radio-bench list                 # what's available
//! radio-bench run t5 l3 --quick    # selected experiments
//! radio-bench all --json-dir out/  # the whole suite, parallel
//! ```
//!
//! This library crate holds the shared experiment plumbing ([`common`]),
//! the registry core ([`registry`]) and experiment implementations
//! ([`experiments`]), the hand-rolled micro-benchmark harness ([`harness`])
//! driving `benches/*.rs`, and the versioned JSON bench-report schema
//! ([`report`]).  Every experiment accepts `--json <path>`,
//! `--json-dir <dir>` (or `RADIO_JSON_OUT=<path>`) to emit its results as a
//! machine-readable [`report::BenchReport`] alongside the ASCII tables —
//! see `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod harness;
pub mod registry;
pub mod report;
