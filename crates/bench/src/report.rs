//! Versioned JSON bench reports.
//!
//! Every experiment binary can emit its results as a [`BenchReport`]
//! (`--json <path>` or `RADIO_JSON_OUT=<path>`), and the micro-benchmarks
//! write the same shape from [`Harness::finish`](crate::harness::Harness).
//! The schema is documented field-by-field in `docs/OBSERVABILITY.md`; the
//! top-level `BENCH_sim.json` the `exp_summary` binary writes is a single
//! report whose points track the workspace's headline numbers across PRs.

use std::io::Write;
use std::path::Path;

use radio_analysis::Summary;
use radio_sim::json::Json;

use crate::common::ProtocolPoint;

/// Current `BenchReport` schema version (see `docs/OBSERVABILITY.md`).
pub const BENCH_REPORT_SCHEMA_VERSION: i64 = 1;

/// One labelled measurement in a bench report.
///
/// Points are schemaless beyond the label: each experiment decides its own
/// field set (documented per-experiment), so one report type serves round
/// counts, throughput numbers, and fit coefficients alike.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Point label, unique within the report (e.g. `"n=20000,d=ln^2"`).
    pub label: String,
    /// Ordered field map.
    pub fields: Vec<(String, Json)>,
}

impl BenchPoint {
    /// An empty point labelled `label`.
    pub fn new(label: &str) -> BenchPoint {
        BenchPoint {
            label: label.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn field(mut self, key: &str, value: Json) -> BenchPoint {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the point.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            vec![("label".to_string(), Json::from(self.label.as_str()))];
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }

    /// Deserializes a point written by [`BenchPoint::to_json`].
    pub fn from_json(json: &Json) -> Result<BenchPoint, String> {
        let Json::Obj(fields) = json else {
            return Err("point is not an object".into());
        };
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or("point missing label")?
            .to_string();
        Ok(BenchPoint {
            label,
            fields: fields
                .iter()
                .filter(|(k, _)| k != "label")
                .cloned()
                .collect(),
        })
    }
}

/// A complete experiment/bench result set for one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Experiment identifier (e.g. `"t7"`, `"sim_round"`).
    pub experiment: String,
    /// The claim or quantity being measured, in prose.
    pub claim: String,
    /// Scale mode: `"quick"`, `"default"`, `"full"`, or `"bench"`.
    pub mode: String,
    /// Master seed of the invocation (0 when not seed-driven).
    pub seed: u64,
    /// The measurements.
    pub points: Vec<BenchPoint>,
}

impl BenchReport {
    /// A report with no points yet.
    pub fn new(experiment: &str, claim: &str, mode: &str, seed: u64) -> BenchReport {
        BenchReport {
            experiment: experiment.to_string(),
            claim: claim.to_string(),
            mode: mode.to_string(),
            seed,
            points: Vec::new(),
        }
    }

    /// Replaces the point list (builder style).
    pub fn with_points(mut self, points: Vec<BenchPoint>) -> BenchReport {
        self.points = points;
        self
    }

    /// Appends one point.
    pub fn push(&mut self, point: BenchPoint) {
        self.points.push(point);
    }

    /// Serializes to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema_version", Json::Int(BENCH_REPORT_SCHEMA_VERSION)),
            ("kind", Json::from("bench_report")),
            ("experiment", Json::from(self.experiment.as_str())),
            ("claim", Json::from(self.claim.as_str())),
            ("mode", Json::from(self.mode.as_str())),
            ("seed", Json::from(self.seed)),
            (
                "points",
                Json::Arr(self.points.iter().map(BenchPoint::to_json).collect()),
            ),
        ])
    }

    /// Deserializes a report written by [`BenchReport::to_json`]; strict
    /// about `schema_version` and `kind`.
    pub fn from_json(json: &Json) -> Result<BenchReport, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != BENCH_REPORT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench_report schema_version {version} (reader supports {BENCH_REPORT_SCHEMA_VERSION})"
            ));
        }
        if json.get("kind").and_then(Json::as_str) != Some("bench_report") {
            return Err("kind is not bench_report".into());
        }
        let text = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key}"))
        };
        let points = json
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing points")?
            .iter()
            .map(BenchPoint::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            experiment: text("experiment")?,
            claim: text("claim")?,
            mode: text("mode")?,
            seed: json
                .get("seed")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or("missing seed")?,
            points,
        })
    }

    /// A copy with every wall-clock- or machine-derived field removed from
    /// every point: keys ending in `_ns`/`_ms`/`_s`/`_per_s`, containing
    /// `_ns_`/`_ms_`, or equal to
    /// `elems_per_sec`/`iters_per_sample`/`peak_rss_kib`/`kernel`/`threads`.
    /// Two runs of the same experiment at the same seed must compare equal
    /// under this projection regardless of machine or thread count — the
    /// determinism tests rely on it.  (`peak_rss_kib` is the process-global
    /// high-water mark; `kernel` and `threads` record which execution path
    /// ran, which the dispatch cost model may pick per machine.)
    pub fn without_timing_fields(&self) -> BenchReport {
        let timing = |key: &str| {
            key.ends_with("_ns")
                || key.ends_with("_ms")
                || key.ends_with("_s")
                || key.contains("_ns_")
                || key.contains("_ms_")
                || key.contains("_per_s")
                || key == "elems_per_sec"
                || key == "iters_per_sample"
                || key == "peak_rss_kib"
                || key == "kernel"
                || key == "threads"
        };
        let mut out = self.clone();
        for point in &mut out.points {
            point.fields.retain(|(k, _)| !timing(k));
        }
        out
    }

    /// Writes the report, pretty-printed, to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().render_pretty().as_bytes())
    }

    /// Reads and parses a report from `path`.
    pub fn read(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&json)
    }
}

/// Serializes a [`Summary`] (with its standard error) as a JSON object.
pub fn summary_to_json(s: &Summary) -> Json {
    Json::object([
        ("count", Json::from(s.count)),
        ("mean", Json::from(s.mean)),
        ("std_dev", Json::from(s.std_dev)),
        ("std_err", Json::from(s.std_err())),
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
        ("median", Json::from(s.median)),
    ])
}

/// The standard JSON shape of a [`ProtocolPoint`]: graph parameters, the
/// rounds summary (null when no trial completed), completion counts, and
/// the lane width of the measurement (`batch_lanes` = 1 for scalar runs).
pub fn protocol_point_to_json(label: &str, point: &ProtocolPoint) -> BenchPoint {
    BenchPoint::new(label)
        .field("n", Json::from(point.n))
        .field("p", Json::from(point.p))
        .field("mean_degree", Json::from(point.mean_degree))
        .field(
            "rounds",
            point.rounds.as_ref().map_or(Json::Null, summary_to_json),
        )
        .field("completed", Json::from(point.completed))
        .field("trials", Json::from(point.trials))
        .field("batch_lanes", Json::from(point.batch_lanes))
        .field("resamples", Json::from(point.resamples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("t7", "distributed O(ln n)", "quick", 42);
        r.push(
            BenchPoint::new("n=1000")
                .field("n", Json::from(1000usize))
                .field("rounds_mean", Json::from(17.25)),
        );
        r.push(BenchPoint::new("n=2000").field("rounds", Json::Null));
        r
    }

    #[test]
    fn report_round_trips() {
        let r = sample_report();
        let json = r.to_json();
        assert_eq!(BenchReport::from_json(&json).unwrap(), r);
        let reparsed = Json::parse(&json.render_pretty()).unwrap();
        assert_eq!(BenchReport::from_json(&reparsed).unwrap(), r);
    }

    #[test]
    fn version_and_kind_checked() {
        let mut json = sample_report().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Int(2);
        }
        assert!(BenchReport::from_json(&json)
            .unwrap_err()
            .contains("schema_version 2"));
        let wrong_kind = Json::object([
            ("schema_version", Json::Int(BENCH_REPORT_SCHEMA_VERSION)),
            ("kind", Json::from("run_report")),
        ]);
        assert!(BenchReport::from_json(&wrong_kind).is_err());
    }

    #[test]
    fn timing_projection_strips_volatile_keys() {
        let mut r = BenchReport::new("t0", "claim", "quick", 1);
        r.push(
            BenchPoint::new("point")
                .field("n", Json::from(8192usize))
                .field("elapsed_ns", Json::from(123u64))
                .field("elems_per_sec", Json::from(4.5e8))
                .field("iters_per_sample", Json::from(3u64))
                .field("peak_rss_kib", Json::from(1024u64))
                .field("kernel", Json::from("tiled"))
                .field("threads", Json::from(8u64))
                .field("rounds_mean", Json::from(17.0)),
        );
        let stripped = r.without_timing_fields();
        let point = &stripped.points[0];
        for volatile in [
            "elapsed_ns",
            "elems_per_sec",
            "iters_per_sample",
            "peak_rss_kib",
            "kernel",
            "threads",
        ] {
            assert!(point.get(volatile).is_none(), "{volatile} not stripped");
        }
        assert_eq!(point.get("n").unwrap().as_i64(), Some(8192));
        assert_eq!(point.get("rounds_mean").unwrap().as_f64(), Some(17.0));
    }

    #[test]
    fn write_and_read_back() {
        let r = sample_report();
        let dir = std::env::temp_dir().join("radio-bench-report-test");
        let path = dir.join("report.json");
        r.write(&path).unwrap();
        assert_eq!(BenchReport::read(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn protocol_point_serialization() {
        let point = ProtocolPoint {
            n: 100,
            p: 0.05,
            mean_degree: 5.2,
            rounds: radio_analysis::Summary::of(&[10.0, 12.0, 14.0]),
            completed: 3,
            trials: 4,
            batch_lanes: 1,
            resamples: 2,
        };
        let bp = protocol_point_to_json("n=100", &point);
        assert_eq!(bp.get("n").unwrap().as_i64(), Some(100));
        let rounds = bp.get("rounds").unwrap();
        assert_eq!(rounds.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(rounds.get("mean").unwrap().as_f64(), Some(12.0));
        assert_eq!(bp.get("batch_lanes").unwrap().as_i64(), Some(1));
        assert_eq!(bp.get("resamples").unwrap().as_i64(), Some(2));
    }
}
