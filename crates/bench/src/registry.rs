//! Declarative experiment registry and the `radio-bench` driver logic.
//!
//! Every experiment in the suite implements [`Experiment`] and registers
//! itself in [`registry`]; the shared plumbing — argument parsing, the
//! banner, JSON report output, and `RADIO_THREADS`-aware parallel
//! execution *across* experiments — lives here exactly once.  Adding a
//! seventeenth scenario is a ~30-line struct in `src/experiments/`, not a
//! new binary.
//!
//! Experiments print through an [`ExpContext`] (the [`crate::outln!`]
//! macro) instead of `println!`: output is buffered per experiment, so a
//! parallel `radio-bench all` emits exactly the same bytes per experiment
//! as sixteen serial binary invocations — determinism the registry tests
//! pin down.  Seeds are derived per measurement point with
//! [`point_seed`](crate::common::point_seed) from the master seed only,
//! never from execution order, which is what makes parallel `all`
//! bit-identical to serial.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::common::ExpArgs;
use crate::report::BenchReport;

/// Per-invocation context handed to [`Experiment::run`]: the parsed
/// arguments plus the buffered stdout of this experiment.
pub struct ExpContext {
    /// Parsed invocation arguments (mode, seed, trial overrides, ...).
    pub args: ExpArgs,
    out: RefCell<String>,
}

impl ExpContext {
    /// A context with an empty output buffer.
    pub fn new(args: ExpArgs) -> ExpContext {
        ExpContext {
            args,
            out: RefCell::new(String::new()),
        }
    }

    /// Appends one formatted line to the buffered output (used by the
    /// [`crate::outln!`] macro; experiments should not call this directly).
    pub fn write_line(&self, line: std::fmt::Arguments<'_>) {
        use std::fmt::Write;
        let mut out = self.out.borrow_mut();
        writeln!(out, "{line}").expect("writing to a String cannot fail");
    }

    /// Consumes the context, returning the buffered output.
    pub fn into_output(self) -> String {
        self.out.into_inner()
    }
}

/// Buffered replacement for `println!` inside experiment `run` bodies:
/// `outln!(ctx)` prints a blank line, `outln!(ctx, "fmt {}", x)` a
/// formatted one.  Buffering keeps parallel experiment output from
/// interleaving.
#[macro_export]
macro_rules! outln {
    ($ctx:expr) => {
        $ctx.write_line(format_args!(""))
    };
    ($ctx:expr, $($arg:tt)*) => {
        $ctx.write_line(format_args!($($arg)*))
    };
}

/// One declarative experiment: a name, the paper claim it checks, its
/// default measurement grid, and a `run` body producing a
/// [`BenchReport`].
pub trait Experiment: Sync {
    /// Registry name (`t5`, `flood`, ... — what `run <name>` matches).
    fn name(&self) -> &'static str;
    /// Banner identifier (`E-T5`, `E-FLD`, ...).
    fn banner_id(&self) -> &'static str;
    /// The claim being validated, in prose (printed in the banner and
    /// recorded in the report).
    fn claim(&self) -> &'static str;
    /// The default-mode measurement grid, as displayable `k=v` pairs.
    fn default_grid(&self) -> Vec<(&'static str, &'static str)>;
    /// Where to write the JSON report when neither `--json` nor
    /// `--json-dir` asked for one (only `summary` overrides this: it
    /// commits `BENCH_sim.json` by default).
    fn default_json_out(&self) -> Option<PathBuf> {
        None
    }
    /// Runs the experiment, printing through `ctx` (see
    /// [`crate::outln!`]) and returning the report.
    fn run(&self, ctx: &ExpContext) -> BenchReport;
}

/// All registered experiments, in the canonical EXPERIMENTS.md order.
pub fn registry() -> Vec<&'static dyn Experiment> {
    use crate::experiments::*;
    vec![
        &t5::T5,
        &t6::T6,
        &t7::T7,
        &t8::T8,
        &l3::L3,
        &l4::L4,
        &flood::Flood,
        &compare::Compare,
        &dense::Dense,
        &opt::Opt,
        &gossip::Gossip,
        &robust::Robust,
        &node::Node,
        &ushape::Ushape,
        &worstcase::Worstcase,
        &ablation::Ablation,
        &summary::Summary,
    ]
}

/// Looks up an experiment by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().into_iter().find(|e| e.name() == name)
}

/// The result of one experiment run: its buffered stdout, the JSON
/// destination (if any was written), and the report itself.
pub struct RunOutcome {
    /// Registry name of the experiment that ran.
    pub name: &'static str,
    /// The experiment's buffered stdout (banner + tables + readings).
    pub output: String,
    /// Where the JSON report was written, when requested.
    pub json_path: Option<PathBuf>,
    /// The report the experiment produced.
    pub report: BenchReport,
}

/// Runs one experiment with the shared plumbing: banner, `run`, and JSON
/// output resolution (`--json` > `--json-dir`/`<name>.json` >
/// [`Experiment::default_json_out`]).  Does not print the buffered
/// stdout — callers decide when (that is what keeps parallel `all`
/// deterministic).
pub fn run_experiment(exp: &dyn Experiment, args: &ExpArgs) -> RunOutcome {
    let ctx = ExpContext::new(args.clone());
    outln!(ctx, "# Experiment {}", exp.banner_id());
    outln!(ctx, "# Claim: {}", exp.claim());
    outln!(ctx, "# mode: {}  seed: {}", args.mode(), args.seed);
    outln!(ctx);
    let report = exp.run(&ctx);
    let json_path = args
        .json_out
        .clone()
        .or_else(|| {
            args.json_dir
                .as_ref()
                .map(|d| d.join(format!("{}.json", exp.name())))
        })
        .or_else(|| exp.default_json_out());
    let json_path = json_path.and_then(|path| match report.write(&path) {
        Ok(()) => {
            eprintln!("JSON report written to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    });
    RunOutcome {
        name: exp.name(),
        output: ctx.into_output(),
        json_path,
        report,
    }
}

/// Runs several experiments with work-stealing over registry entries,
/// honoring `RADIO_THREADS` via [`radio_sim::thread_budget`].  Outcomes
/// come back in input order regardless of which worker ran what, and —
/// because every experiment seeds its points from the master seed alone —
/// each outcome is bit-identical to a serial run.
pub fn run_many(exps: &[&'static dyn Experiment], args: &ExpArgs) -> Vec<RunOutcome> {
    let workers = radio_sim::thread_budget(exps.len());
    if workers <= 1 || exps.len() <= 1 {
        return exps.iter().map(|e| run_experiment(*e, args)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOutcome>>> = exps.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= exps.len() {
                    break;
                }
                let outcome = run_experiment(exps[i], args);
                *slots[i].lock().expect("slot lock poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock poisoned")
                .expect("every experiment slot filled")
        })
        .collect()
}

/// Runs one named experiment with the standard flags from `argv` and
/// prints its output (the programmatic equivalent of
/// `radio-bench run <name>`).
pub fn run_named(name: &str) {
    let args = ExpArgs::parse();
    let Some(exp) = find(name) else {
        eprintln!("error: unknown experiment {name:?} (run `radio-bench list`)");
        std::process::exit(2);
    };
    let outcome = run_experiment(exp, &args);
    print!("{}", outcome.output);
}

/// The `radio-bench` driver: `list`, `run <name>... [flags]`, and
/// `all [flags]`.  `argv` excludes the program name.  Also reachable as
/// `radio-cli bench ...`.
pub fn cli_main(argv: Vec<String>) {
    let mut it = argv.into_iter();
    let cmd = it.next().unwrap_or_else(|| cli_usage(""));
    let rest: Vec<String> = it.collect();
    match cmd.as_str() {
        "list" => {
            if !rest.is_empty() {
                cli_usage("`list` takes no arguments");
            }
            print!("{}", render_list());
        }
        "run" => {
            let mut names: Vec<String> = Vec::new();
            let mut flags: Vec<String> = Vec::new();
            for (i, a) in rest.iter().enumerate() {
                if a.starts_with("--") {
                    flags.extend_from_slice(&rest[i..]);
                    break;
                }
                names.push(a.clone());
            }
            if names.is_empty() {
                cli_usage("`run` needs at least one experiment name");
            }
            let exps: Vec<&'static dyn Experiment> = names
                .iter()
                .map(|n| {
                    find(n).unwrap_or_else(|| {
                        cli_usage(&format!("unknown experiment {n:?} (try `list`)"))
                    })
                })
                .collect();
            run_and_print(&exps, ExpArgs::parse_from(flags));
        }
        "all" => {
            run_and_print(&registry(), ExpArgs::parse_from(rest));
        }
        "--help" | "-h" | "help" => cli_usage(""),
        other => cli_usage(&format!("unknown subcommand {other:?}")),
    }
}

fn run_and_print(exps: &[&'static dyn Experiment], mut args: ExpArgs) {
    if exps.len() > 1 && args.json_out.is_some() {
        eprintln!(
            "warning: --json names a single file but {} experiments were selected; \
             ignoring it — use --json-dir for one report per experiment",
            exps.len()
        );
        args.json_out = None;
    }
    for outcome in run_many(exps, &args) {
        print!("{}", outcome.output);
    }
}

/// The `list` subcommand body (also used by tests).
pub fn render_list() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for exp in registry() {
        let grid = exp
            .default_grid()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            out,
            "{:<10} {:<6} [{grid}]\n{:<17} {}",
            exp.name(),
            exp.banner_id(),
            "",
            exp.claim()
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\nrun one with `radio-bench run <name>`, everything with `radio-bench all`.\n");
    out
}

fn cli_usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: radio-bench <subcommand>\n\
         \n\
         subcommands:\n\
         \x20 list                      show every registered experiment\n\
         \x20 run <name>... [flags]     run the named experiments\n\
         \x20 all [flags]               run the whole registry (parallel, RADIO_THREADS-aware)\n\
         \n\
         flags: [--quick | --full] [--seed N] [--trials N] [--n N]\n\
         \x20      [--backend auto|explicit|implicit|sharded]\n\
         \x20      [--json PATH] [--json-dir DIR] [--grid k=v,...]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_findable() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let mut names: Vec<&str> = reg.iter().map(|e| e.name()).collect();
        for name in &names {
            assert!(find(name).is_some(), "find({name}) failed");
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "duplicate registry names");
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn list_mentions_every_experiment() {
        let listing = render_list();
        for exp in registry() {
            assert!(listing.contains(exp.name()));
            assert!(listing.contains(exp.banner_id()));
        }
    }

    #[test]
    fn outln_buffers_lines() {
        let ctx = ExpContext::new(ExpArgs::default());
        outln!(ctx, "a {}", 1);
        outln!(ctx);
        outln!(ctx, "b");
        assert_eq!(ctx.into_output(), "a 1\n\nb\n");
    }
}
