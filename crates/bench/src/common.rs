//! Shared plumbing for the experiments.
//!
//! Every experiment follows the same skeleton: parse a handful of flags
//! ([`ExpArgs`]), fan Monte-Carlo trials over a scoped thread pool with per-trial derived
//! seeds, aggregate with `radio-analysis`, print a markdown table, and drop
//! the raw rows as CSV under `target/experiments/`.

use radio_analysis::Summary;
use radio_graph::components::is_connected;
use radio_graph::gnp::sample_gnp;
use radio_graph::{Graph, NodeId, Xoshiro256pp};
use radio_sim::{run_trials, Backend, Protocol, RunConfig, RunSpec, TraceLevel};

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Master seed (`--seed N`, default 20060501 — the paper's JCSS year
    /// and a nod to SPAA'05).
    pub seed: u64,
    /// Quick mode (`--quick`): smaller sizes / fewer trials, for CI.
    pub quick: bool,
    /// Full mode (`--full`): larger sizes / more trials.
    pub full: bool,
    /// Override trial count (`--trials N`).
    pub trials: Option<usize>,
    /// Write a JSON [`BenchReport`](crate::report::BenchReport) to this
    /// path (`--json PATH`, or the `RADIO_JSON_OUT` environment variable).
    pub json_out: Option<std::path::PathBuf>,
    /// Write one JSON report per experiment to `<dir>/<name>.json`
    /// (`--json-dir DIR`); used by the registry driver's `run`/`all`.
    pub json_dir: Option<std::path::PathBuf>,
    /// Collapse every size sweep to this single `n` (`--n N`, or `n=N` in
    /// `--grid`).  Lets the registry run any experiment at a smoke grid.
    pub n_override: Option<usize>,
    /// Graph backend (`--backend auto|explicit|implicit|sharded`, default
    /// explicit).  Experiments that support it switch their sweeps to the
    /// provider-driven engine — e.g. `t7 --backend implicit` runs the
    /// adjacency-free scale sweep up to n = 10⁷.
    pub backend: Backend,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: 20060501,
            quick: false,
            full: false,
            trials: None,
            json_out: std::env::var_os("RADIO_JSON_OUT").map(Into::into),
            json_dir: None,
            n_override: None,
            backend: Backend::Explicit,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`.  Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument list (no program name).  Used by the
    /// `radio-bench` driver after it has peeled off subcommands and
    /// experiment names.
    pub fn parse_from(argv: Vec<String>) -> Self {
        let mut args = ExpArgs::default();
        let mut it = argv.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--full" => args.full = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--trials" => {
                    args.trials = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--trials needs an integer")),
                    );
                }
                "--n" => {
                    args.n_override = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--n needs an integer")),
                    );
                }
                "--json" => {
                    args.json_out = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--json needs a path"))
                            .into(),
                    );
                }
                "--json-dir" => {
                    args.json_dir = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--json-dir needs a directory"))
                            .into(),
                    );
                }
                "--backend" => {
                    args.backend = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--backend needs auto|explicit|implicit|sharded"));
                }
                "--grid" => {
                    let spec = it.next().unwrap_or_else(|| usage("--grid needs k=v,..."));
                    if let Err(e) = args.apply_grid(&spec) {
                        usage(&e);
                    }
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Applies a `k=v,...` grid spec.  Recognized keys: `mode`
    /// (`quick`/`default`/`full`), `seed`, `trials`, `n`, `backend`.
    pub fn apply_grid(&mut self, spec: &str) -> Result<(), String> {
        for pair in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--grid entry {pair:?} is not k=v"))?;
            let bad = |what: &str| format!("--grid {key}={value:?}: {what}");
            match key {
                "mode" => match value {
                    "quick" => (self.quick, self.full) = (true, false),
                    "full" => (self.quick, self.full) = (false, true),
                    "default" => (self.quick, self.full) = (false, false),
                    _ => return Err(bad("expected quick|default|full")),
                },
                "seed" => self.seed = value.parse().map_err(|_| bad("expected an integer"))?,
                "trials" => {
                    self.trials = Some(value.parse().map_err(|_| bad("expected an integer"))?)
                }
                "n" => {
                    self.n_override = Some(value.parse().map_err(|_| bad("expected an integer"))?)
                }
                "backend" => {
                    self.backend = value
                        .parse()
                        .map_err(|_| bad("expected auto|explicit|implicit|sharded"))?
                }
                _ => {
                    return Err(format!(
                        "--grid key {key:?} (known: mode,seed,trials,n,backend)"
                    ))
                }
            }
        }
        Ok(())
    }

    /// The mode string used in banners and JSON reports.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else if self.full {
            "full"
        } else {
            "default"
        }
    }

    /// Picks between quick/default/full values.
    pub fn scale<T>(&self, quick: T, default: T, full: T) -> T {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }

    /// Trial count with override applied.
    pub fn trials_or(&self, default: usize) -> usize {
        self.trials.unwrap_or(default)
    }

    /// A single sweep size with the `--n` override applied.
    pub fn size(&self, default: usize) -> usize {
        self.n_override.unwrap_or(default)
    }

    /// A size sweep: `default` unless `--n` collapsed it to one point.
    pub fn sizes(&self, default: Vec<usize>) -> Vec<usize> {
        match self.n_override {
            Some(n) => vec![n],
            None => default,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: radio-bench [list | run <name>... | all] [--quick | --full] [--seed N]\n       [--trials N] [--n N] [--backend auto|explicit|implicit|sharded]\n       [--json PATH] [--json-dir DIR] [--grid k=v,...]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Writes `report` to the path requested by `--json`/`RADIO_JSON_OUT`, if
/// any.  Missing parent directories are created
/// ([`BenchReport::write`](crate::report::BenchReport::write)) and the
/// path is reported on success; a write failure warns instead of
/// discarding the run's ASCII output.
pub fn maybe_write_json(args: &ExpArgs, report: &crate::report::BenchReport) {
    let Some(path) = &args.json_out else { return };
    match report.write(path) {
        Ok(()) => eprintln!("JSON report written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Samples `G(n, p)` conditioned on connectivity (up to `max_attempts`
/// resamples).  Returns the graph and the number of rejected samples.
pub fn sample_connected_gnp(
    n: usize,
    p: f64,
    rng: &mut Xoshiro256pp,
    max_attempts: usize,
) -> Option<(Graph, usize)> {
    for attempt in 0..max_attempts {
        let g = sample_gnp(n, p, rng);
        if is_connected(&g) {
            return Some((g, attempt));
        }
    }
    None
}

/// Result of one protocol measurement point.
#[derive(Debug, Clone)]
pub struct ProtocolPoint {
    /// Node count.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Realized mean degree across trials.
    pub mean_degree: f64,
    /// Summary of completion rounds over completed trials.
    pub rounds: Option<Summary>,
    /// Completed trials / total trials.
    pub completed: usize,
    /// Total trials.
    pub trials: usize,
    /// Trial lanes per graph (1 for scalar measurements; see
    /// [`measure_protocol_batch`]).
    pub batch_lanes: usize,
    /// Total `G(n, p)` samples rejected for disconnectedness across all
    /// trials ([`sample_connected_gnp`]); 0 when the measurement does not
    /// condition on connectivity.
    pub resamples: usize,
}

/// Trial lanes per graph sample in [`measure_protocol`]'s two-level
/// Monte-Carlo (the full width of the lane kernel).
pub const TRIAL_LANES: usize = radio_sim::MAX_LANES;

/// Measures a distributed protocol with two-level Monte-Carlo: `graphs`
/// independent connected `G(n, p)` samples (fanned over the trial thread
/// pool), each carrying [`TRIAL_LANES`] lane-batched protocol runs from a
/// random source — threads×64 effective trial parallelism.  The returned
/// point aggregates all `graphs × TRIAL_LANES` trials.
pub fn measure_protocol<P, F>(
    n: usize,
    p: f64,
    graphs: usize,
    master_seed: u64,
    protocol_factory: F,
) -> ProtocolPoint
where
    P: Protocol,
    F: Fn() -> P + Sync,
{
    measure_protocol_batch(n, p, graphs, TRIAL_LANES, master_seed, protocol_factory)
}

/// Two-level Monte-Carlo with an explicit lane count: `graphs` graph
/// samples × `lanes` protocol trials per graph (a multi-lane
/// [`RunSpec`]), aggregated into one point.
pub fn measure_protocol_batch<P, F>(
    n: usize,
    p: f64,
    graphs: usize,
    lanes: usize,
    master_seed: u64,
    protocol_factory: F,
) -> ProtocolPoint
where
    P: Protocol,
    F: Fn() -> P + Sync,
{
    // One entry per graph sample: the per-lane (rounds, degree) pairs plus
    // the connectivity-rejection count for that sample.
    type GraphTrial = (Vec<(Option<u32>, f64)>, usize);
    let per_graph: Vec<GraphTrial> = run_trials(graphs, master_seed, |_i, rng| {
        let Some((g, rejected)) = sample_connected_gnp(n, p, rng, 50) else {
            return (vec![(None, 0.0); lanes], 50);
        };
        let source = rng.below(n as u64) as NodeId;
        let mut proto = protocol_factory();
        let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);
        let lane_seed = rng.next();
        let d = g.average_degree();
        let lanes_out = RunSpec::on_graph(&g, source)
            .with_config(cfg)
            .with_lanes(lanes)
            .with_master_seed(lane_seed)
            .run(&mut proto)
            .lanes
            .into_iter()
            .map(|r| (r.completed.then_some(r.rounds), d))
            .collect();
        (lanes_out, rejected)
    });
    let resamples: usize = per_graph.iter().map(|(_, rej)| rej).sum();
    let results: Vec<(Option<u32>, f64)> = per_graph
        .into_iter()
        .flat_map(|(lanes_out, _)| lanes_out)
        .collect();
    let mut point = summarize_point(n, p, graphs * lanes, &results);
    point.batch_lanes = lanes;
    point.resamples = resamples;
    point
}

/// Measures via an arbitrary per-trial runner returning
/// `(rounds-if-completed, realized-degree)`.
pub fn measure_custom<F>(n: usize, p: f64, trials: usize, master_seed: u64, job: F) -> ProtocolPoint
where
    F: Fn(&mut Xoshiro256pp) -> (Option<u32>, f64) + Sync,
{
    let results: Vec<(Option<u32>, f64)> = run_trials(trials, master_seed, |_i, rng| job(rng));
    summarize_point(n, p, trials, &results)
}

fn summarize_point(
    n: usize,
    p: f64,
    trials: usize,
    results: &[(Option<u32>, f64)],
) -> ProtocolPoint {
    let rounds: Vec<f64> = results
        .iter()
        .filter_map(|(r, _)| r.map(|x| x as f64))
        .collect();
    let mean_degree = if results.is_empty() {
        0.0
    } else {
        results.iter().map(|&(_, d)| d).sum::<f64>() / results.len() as f64
    };
    ProtocolPoint {
        n,
        p,
        mean_degree,
        rounds: Summary::of(&rounds),
        completed: rounds.len(),
        trials,
        batch_lanes: 1,
        resamples: 0,
    }
}

/// A deterministic per-point seed derived from the master seed and a label.
///
/// Alias for [`radio_graph::labeled_seed`], the workspace's one
/// label-to-seed convention — shared with the trial runner's indexed
/// `child_rng` fan-out, so per-point streams and per-trial streams compose
/// without collisions.
pub fn point_seed(master: u64, label: &str) -> u64 {
    radio_graph::labeled_seed(master, label)
}

/// Writes CSV content to `target/experiments/<name>.csv` (best-effort; a
/// failure prints a warning instead of aborting the experiment).
pub fn write_csv(name: &str, content: String) {
    let dir = std::path::Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, content) {
        Ok(()) => eprintln!("raw data written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Prints the standard experiment header.
pub fn banner(id: &str, claim: &str, args: &ExpArgs) {
    println!("# Experiment {id}");
    println!("# Claim: {claim}");
    println!("# mode: {}  seed: {}", args.mode(), args.seed);
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_broadcast::distributed::Flooding;

    #[test]
    fn connected_sampling_succeeds_above_threshold() {
        let mut rng = Xoshiro256pp::new(1);
        let n = 500;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let (g, rejects) = sample_connected_gnp(n, p, &mut rng, 10).unwrap();
        assert!(is_connected(&g));
        assert!(rejects <= 2);
    }

    #[test]
    fn connected_sampling_fails_below_threshold() {
        let mut rng = Xoshiro256pp::new(2);
        // p far below threshold: isolated vertices guaranteed.
        assert!(sample_connected_gnp(500, 0.0005, &mut rng, 3).is_none());
    }

    #[test]
    fn measure_protocol_smoke() {
        let n = 300;
        let p = 0.05;
        let pt = measure_protocol(n, p, 2, 7, || Flooding);
        assert_eq!(pt.trials, 2 * TRIAL_LANES);
        assert_eq!(pt.batch_lanes, TRIAL_LANES);
        assert!(pt.mean_degree > 5.0);
        // Flooding on this density mostly fails — either way the summary is
        // well-formed.
        assert!(pt.completed <= pt.trials);
    }

    #[test]
    fn measure_protocol_batch_lane_width_respected() {
        let pt = measure_protocol_batch(80, 0.1, 3, 5, 11, || Flooding);
        assert_eq!(pt.trials, 15);
        assert_eq!(pt.batch_lanes, 5);
        // Dense enough that connectivity rejection is essentially never hit.
        assert_eq!(pt.resamples, 0);
    }

    #[test]
    fn resamples_counts_rejected_graphs() {
        // p far below the connectivity threshold: every sample is rejected,
        // so each of the 2 graph trials burns its full budget of 50.
        let pt = measure_protocol_batch(500, 0.0005, 2, 1, 3, || Flooding);
        assert_eq!(pt.resamples, 100);
        assert_eq!(pt.completed, 0);
    }

    #[test]
    fn grid_spec_overrides() {
        let mut args = ExpArgs::default();
        args.apply_grid("mode=quick,seed=7,trials=2,n=256").unwrap();
        assert!(args.quick && !args.full);
        assert_eq!(args.seed, 7);
        assert_eq!(args.trials, Some(2));
        assert_eq!(args.n_override, Some(256));
        assert_eq!(args.size(1024), 256);
        assert_eq!(args.sizes(vec![1, 2, 3]), vec![256]);
        assert!(args.apply_grid("bogus=1").is_err());
        assert!(args.apply_grid("n=abc").is_err());
        assert!(args.apply_grid("mode=warp").is_err());
        assert_eq!(args.backend, Backend::Explicit);
        args.apply_grid("backend=implicit").unwrap();
        assert_eq!(args.backend, Backend::Implicit);
        assert!(args.apply_grid("backend=warp").is_err());
        let d = ExpArgs::default();
        assert_eq!(d.size(1024), 1024);
        assert_eq!(d.sizes(vec![1, 2]), vec![1, 2]);
    }

    #[test]
    fn point_seed_matches_shared_helper() {
        assert_eq!(
            point_seed(42, "t5/n=1024"),
            radio_graph::labeled_seed(42, "t5/n=1024")
        );
    }

    #[test]
    fn point_seed_distinct_labels() {
        assert_ne!(point_seed(1, "a"), point_seed(1, "b"));
        assert_eq!(point_seed(1, "a"), point_seed(1, "a"));
        assert_ne!(point_seed(1, "a"), point_seed(2, "a"));
    }
}
