//! `radio-bench` — the single driver over the experiment registry.
//!
//! ```text
//! radio-bench list                         # experiments with claims and grids
//! radio-bench run <name>... [flags]        # selected experiments
//! radio-bench all [flags]                  # the whole suite
//! ```
//!
//! Flags after the subcommand are the usual experiment flags
//! (`--quick | --full`, `--seed N`, `--trials N`, `--n N`, `--json PATH`,
//! `--json-dir DIR`, `--grid k=v,...`).  Multi-experiment runs execute in
//! parallel under the `RADIO_THREADS` budget with deterministic
//! per-experiment seeds, so parallel output is bit-identical to serial.

fn main() {
    radio_bench::registry::cli_main(std::env::args().skip(1).collect());
}
