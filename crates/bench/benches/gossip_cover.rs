//! Criterion bench: gossiping engine and greedy-cover selection throughput.
//!
//! The gossiping engine unions n-bit rumor sets on every delivery — its
//! cost is `O(successes · n/64)` per round; the greedy cover is the
//! dominant cost of schedule construction.  Both get tracked here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_broadcast::distributed::ConstantProb;
use radio_broadcast::gossiping::run_radio_gossiping;
use radio_graph::cover::greedy_radio_cover;
use radio_graph::gnp::sample_gnp;
use radio_graph::{NodeId, Xoshiro256pp};
use std::hint::black_box;

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_end_to_end");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let d = 20.0;
        let mut rng = Xoshiro256pp::new(3);
        let g = sample_gnp(n, d / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("const_1_over_d", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = Xoshiro256pp::new(11);
                let mut strat = ConstantProb::new(1.0 / d);
                black_box(run_radio_gossiping(g, &mut strat, 1_000_000, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_cover");
    for &n in &[10_000usize, 50_000] {
        let d = 50.0;
        let mut rng = Xoshiro256pp::new(5);
        let g = sample_gnp(n, d / n as f64, &mut rng);
        let candidates: Vec<NodeId> = (0..(n / 2) as NodeId).collect();
        let targets: Vec<NodeId> = ((n / 2) as NodeId..n as NodeId).collect();
        group.bench_with_input(BenchmarkId::new("half_half", n), &g, |b, g| {
            b.iter(|| {
                black_box(greedy_radio_cover(g, &candidates, &targets, None))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gossip, bench_cover);
criterion_main!(benches);
