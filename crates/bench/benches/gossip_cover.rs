//! Micro-bench: gossiping engine and greedy-cover selection throughput.
//!
//! The gossiping engine unions n-bit rumor sets on every delivery — its
//! cost is `O(successes · n/64)` per round; the greedy cover is the
//! dominant cost of schedule construction.  Both get tracked here.

use radio_bench::harness::Harness;
use radio_broadcast::distributed::ConstantProb;
use radio_broadcast::gossiping::run_radio_gossiping;
use radio_graph::cover::greedy_radio_cover;
use radio_graph::gnp::sample_gnp;
use radio_graph::{NodeId, Xoshiro256pp};
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("gossip_cover");
    h.sample_size(10);
    for &n in &[256usize, 1024] {
        let d = 20.0;
        let mut rng = Xoshiro256pp::new(3);
        let g = sample_gnp(n, d / n as f64, &mut rng);
        h.bench(&format!("gossip_const_1_over_d/{n}"), || {
            let mut rng = Xoshiro256pp::new(11);
            let mut strat = ConstantProb::new(1.0 / d);
            black_box(run_radio_gossiping(&g, &mut strat, 1_000_000, &mut rng))
        });
    }
    for &n in &[10_000usize, 50_000] {
        let d = 50.0;
        let mut rng = Xoshiro256pp::new(5);
        let g = sample_gnp(n, d / n as f64, &mut rng);
        let candidates: Vec<NodeId> = (0..(n / 2) as NodeId).collect();
        let targets: Vec<NodeId> = ((n / 2) as NodeId..n as NodeId).collect();
        h.bench(&format!("greedy_cover_half_half/{n}"), || {
            black_box(greedy_radio_cover(&g, &candidates, &targets, None))
        });
    }
    h.finish();
}
