//! Criterion bench: round-engine throughput.
//!
//! One radio round costs `O(Σ deg(t))` over the transmitters; this bench
//! measures rounds/second at realistic transmitter densities (the `1/d`
//! fraction the paper's protocols use) and at flooding density (worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_graph::gnp::sample_gnp;
use radio_graph::{NodeId, Xoshiro256pp};
use radio_sim::{BroadcastState, RoundEngine};
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_round");
    let n = 100_000usize;
    let d = 50.0;
    let mut rng = Xoshiro256pp::new(7);
    let g = sample_gnp(n, d / n as f64, &mut rng);

    // Pre-informed half the graph.
    let mut state = BroadcastState::new(n, 0);
    for v in 0..(n / 2) as NodeId {
        state.inform(v, 0);
    }

    for &(label, frac) in &[("frac_1_over_d", 1.0 / 50.0), ("flooding", 1.0)] {
        let transmitters: Vec<NodeId> = (0..(n / 2) as NodeId)
            .filter(|_| rng.next_f64() < frac)
            .collect();
        group.throughput(Throughput::Elements(transmitters.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(label, transmitters.len()),
            &transmitters,
            |b, transmitters| {
                let mut engine = RoundEngine::new(&g);
                b.iter(|| {
                    let mut st = state.clone();
                    black_box(engine.execute_round(&mut st, transmitters, 1))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
