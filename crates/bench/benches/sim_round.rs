//! Micro-bench: round-engine throughput.
//!
//! One radio round costs `O(Σ deg(t))` over the transmitters; this bench
//! measures rounds/second at realistic transmitter densities (the `1/d`
//! fraction the paper's protocols use) and at flooding density (worst
//! case).  The observed variant must match the plain one — the no-op
//! observer is required to be free.

use radio_bench::harness::Harness;
use radio_graph::gnp::sample_gnp;
use radio_graph::{NodeId, Xoshiro256pp};
use radio_sim::{run_schedule, run_schedule_observed, NoopObserver, Schedule};
use radio_sim::{BroadcastState, EngineKernel, RoundEngine, TraceLevel, TransmitterPolicy};
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("sim_round");
    let n = 100_000usize;
    let d = 50.0;
    let mut rng = Xoshiro256pp::new(7);
    let g = sample_gnp(n, d / n as f64, &mut rng);

    // Pre-informed half the graph.
    let mut state = BroadcastState::new(n, 0);
    for v in 0..(n / 2) as NodeId {
        state.inform(v, 0);
    }

    for &(label, frac) in &[("frac_1_over_d", 1.0 / 50.0), ("flooding", 1.0)] {
        let transmitters: Vec<NodeId> = (0..(n / 2) as NodeId)
            .filter(|_| rng.next_f64() < frac)
            .collect();
        let mut engine = RoundEngine::new(&g);
        h.bench_with_throughput(
            &format!("{label}/{}", transmitters.len()),
            Some(transmitters.len() as u64),
            || {
                let mut st = state.clone();
                black_box(engine.execute_round(&mut st, &transmitters, 1))
            },
        );
    }

    // Kernel crossover: a dense-favourable instance (small n, high degree)
    // run through both kernels at the same transmitter fraction.  See
    // docs/PERF.md for how these points calibrate the Auto cost model.
    let nk = 8192usize;
    let dk = 81.0;
    let gk = sample_gnp(nk, dk / nk as f64, &mut rng);
    let mut state_k = BroadcastState::new(nk, 0);
    for v in 0..(nk / 2) as NodeId {
        state_k.inform(v, 0);
    }
    let tx_k: Vec<NodeId> = (0..(nk / 2) as NodeId)
        .filter(|_| rng.next_f64() < 1.0 / dk)
        .collect();
    for (label, kernel) in [
        ("kernel_crossover_sparse", EngineKernel::Sparse),
        ("kernel_crossover_dense", EngineKernel::Dense),
    ] {
        let mut engine = RoundEngine::new(&gk).with_kernel(kernel);
        h.bench_with_throughput(
            &format!("{label}/{}", tx_k.len()),
            Some(tx_k.len() as u64),
            || {
                let mut st = state_k.clone();
                black_box(engine.execute_round(&mut st, &tx_k, 1))
            },
        );
    }

    // Observer overhead check: an identical schedule replay with and
    // without the no-op observer must bench the same.
    let transmitters: Vec<NodeId> = (0..(n / 2) as NodeId)
        .filter(|_| rng.next_f64() < 1.0 / 50.0)
        .collect();
    let schedule = Schedule::from_rounds(vec![transmitters; 8]);
    h.bench("replay_plain", || {
        black_box(run_schedule(
            &g,
            0,
            &schedule,
            TransmitterPolicy::InformedOnly,
            TraceLevel::SummaryOnly,
        ))
    });
    h.bench("replay_noop_observer", || {
        black_box(run_schedule_observed(
            &g,
            0,
            &schedule,
            TransmitterPolicy::InformedOnly,
            TraceLevel::SummaryOnly,
            &mut NoopObserver,
        ))
    });

    h.finish();
}
