//! Micro-bench: centralized schedule construction cost.
//!
//! Theorem 5's schedule is built offline; this bench tracks the builder's
//! cost (dominated by the BFS layering and the final greedy covers) against
//! the pure-greedy scheduler it replaces, across graph sizes.

use radio_bench::harness::Harness;
use radio_broadcast::centralized::{build_eg_schedule, greedy_cover_schedule, CentralizedParams};
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("schedule_build");
    h.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        let p = (n as f64).ln().powi(2) / n as f64;
        let mut rng = Xoshiro256pp::new(3);
        let g = sample_gnp(n, p, &mut rng);

        h.bench(&format!("eg_phases/{n}"), || {
            let mut rng = Xoshiro256pp::new(11);
            black_box(build_eg_schedule(
                &g,
                0,
                CentralizedParams::default(),
                &mut rng,
            ))
        });
        h.bench(&format!("pure_greedy/{n}"), || {
            let mut rng = Xoshiro256pp::new(11);
            black_box(greedy_cover_schedule(&g, 0, 100_000, &mut rng))
        });
    }
    h.finish();
}
