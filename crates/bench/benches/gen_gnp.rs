//! Micro-bench: random-graph generator throughput.
//!
//! The geometric-skipping `G(n,p)` sampler is the substrate under every
//! experiment; this bench tracks its `O(n + m)` scaling and compares it
//! with the `G(n,m)` sampler at matched edge counts.

use radio_bench::harness::Harness;
use radio_graph::gnm::sample_gnm;
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("gen_gnp");
    for &n in &[10_000usize, 100_000] {
        for &d in &[10.0f64, 100.0] {
            let p = d / n as f64;
            let m = (p * (n as f64) * (n as f64 - 1.0) / 2.0) as u64;
            let mut rng = Xoshiro256pp::new(42);
            h.bench_with_throughput(&format!("gnp_d{d}/{n}"), Some(m), || {
                black_box(sample_gnp(n, p, &mut rng))
            });
        }
    }
    for &n in &[10_000usize, 100_000] {
        let m = n * 20;
        let mut rng = Xoshiro256pp::new(42);
        h.bench_with_throughput(&format!("gnm_m20n/{n}"), Some(m as u64), || {
            black_box(sample_gnm(n, m, &mut rng))
        });
    }
    h.finish();
}
