//! Criterion bench: random-graph generator throughput.
//!
//! The geometric-skipping `G(n,p)` sampler is the substrate under every
//! experiment; this bench tracks its `O(n + m)` scaling and compares it with
//! the `G(n,m)` sampler at matched edge counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_graph::gnm::sample_gnm;
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use std::hint::black_box;

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_gnp");
    for &n in &[10_000usize, 100_000] {
        for &d in &[10.0f64, 100.0] {
            let p = d / n as f64;
            let m = (p * (n as f64) * (n as f64 - 1.0) / 2.0) as u64;
            group.throughput(Throughput::Elements(m));
            group.bench_with_input(
                BenchmarkId::new(format!("gnp_d{d}"), n),
                &(n, p),
                |b, &(n, p)| {
                    let mut rng = Xoshiro256pp::new(42);
                    b.iter(|| black_box(sample_gnp(n, p, &mut rng)))
                },
            );
        }
    }
    group.finish();
}

fn bench_gnm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_gnm");
    for &n in &[10_000usize, 100_000] {
        let m = n * 20;
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("gnm_m20n", n), &(n, m), |b, &(n, m)| {
            let mut rng = Xoshiro256pp::new(42);
            b.iter(|| black_box(sample_gnm(n, m, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gnp, bench_gnm);
criterion_main!(benches);
