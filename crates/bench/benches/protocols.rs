//! Micro-bench: end-to-end protocol runs at fixed size.
//!
//! Wall-clock of a complete broadcast per protocol on the same `G(n, p)`
//! instance — the number the Monte-Carlo sweeps ultimately pay per trial.

use radio_bench::harness::Harness;
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use radio_sim::{RunConfig, RunSpec, TraceLevel};
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("protocols_end_to_end");
    h.sample_size(20);
    let n = 20_000usize;
    let p = (n as f64).ln().powi(2) / n as f64;
    let mut rng = Xoshiro256pp::new(5);
    let g = sample_gnp(n, p, &mut rng);
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);

    h.bench("eg_distributed", || {
        let mut rng = Xoshiro256pp::new(17);
        let mut proto = EgDistributed::new(p);
        black_box(
            RunSpec::on_graph(&g, 0)
                .with_config(cfg)
                .run_with_rng(&mut proto, &mut rng)
                .into_single(),
        )
    });
    h.bench("decay", || {
        let mut rng = Xoshiro256pp::new(17);
        let mut proto = Decay::new();
        black_box(
            RunSpec::on_graph(&g, 0)
                .with_config(cfg)
                .run_with_rng(&mut proto, &mut rng)
                .into_single(),
        )
    });
    h.finish();
}
