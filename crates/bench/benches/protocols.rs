//! Criterion bench: end-to-end protocol runs at fixed size.
//!
//! Wall-clock of a complete broadcast per protocol on the same `G(n, p)`
//! instance — the number the Monte-Carlo sweeps ultimately pay per trial.

use criterion::{criterion_group, criterion_main, Criterion};
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::gnp::sample_gnp;
use radio_graph::Xoshiro256pp;
use radio_sim::{run_protocol, RunConfig, TraceLevel};
use std::hint::black_box;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_end_to_end");
    group.sample_size(20);
    let n = 20_000usize;
    let p = (n as f64).ln().powi(2) / n as f64;
    let mut rng = Xoshiro256pp::new(5);
    let g = sample_gnp(n, p, &mut rng);
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);

    group.bench_function("eg_distributed", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256pp::new(17);
            let mut proto = EgDistributed::new(p);
            black_box(run_protocol(&g, 0, &mut proto, cfg, &mut rng))
        })
    });
    group.bench_function("decay", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256pp::new(17);
            let mut proto = Decay::new();
            black_box(run_protocol(&g, 0, &mut proto, cfg, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
