//! End-to-end check that the driver's `--json` reports agree with its
//! ASCII output.
//!
//! Runs the compiled `radio-bench run t7` in quick mode with a tiny trial
//! count, parses
//! the JSON report it writes, and verifies (a) the schema envelope, and
//! (b) that every per-point round mean in the JSON also appears in the
//! rendered ASCII table — the two outputs are two views of one measurement.

use std::process::Command;

use radio_analysis::fnum;
use radio_bench::report::BenchReport;
use radio_sim::Json;

#[test]
fn exp_t7_json_report_matches_ascii_output() {
    let dir = std::env::temp_dir().join("radio-bench-exp-json");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("t7.json");
    let _ = std::fs::remove_file(&json_path);

    let out = Command::new(env!("CARGO_BIN_EXE_radio-bench"))
        .args([
            "run",
            "t7",
            "--quick",
            "--trials",
            "3",
            "--seed",
            "7",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn radio-bench");
    assert!(
        out.status.success(),
        "radio-bench run t7 failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let ascii = String::from_utf8_lossy(&out.stdout).into_owned();

    let report = BenchReport::read(&json_path).expect("JSON report parses");
    assert_eq!(report.experiment, "t7");
    assert_eq!(report.mode, "quick");
    assert_eq!(report.seed, 7);
    assert!(ascii.contains(&report.claim), "banner repeats the claim");

    // Quick mode sweeps n ∈ {1024, 4096} over three regimes; every regime
    // must have produced at least one point, plus the fit point.
    let protocol_points: Vec<_> = report
        .points
        .iter()
        .filter(|pt| pt.label.contains("/n="))
        .collect();
    assert!(
        protocol_points.len() >= 4,
        "expected several protocol points, got {:?}",
        report.points.iter().map(|p| &p.label).collect::<Vec<_>>()
    );

    for pt in &protocol_points {
        // The ASCII table prints the same mean with fnum(·, 1); the JSON
        // carries it raw under rounds.mean.
        let mean = pt
            .get("rounds")
            .and_then(|r| r.get("mean"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("point {} lacks rounds.mean", pt.label));
        let rendered = fnum(mean, 1);
        assert!(
            ascii.contains(&rendered),
            "JSON mean {rendered} for {} not found in ASCII output:\n{ascii}",
            pt.label
        );
        let n = pt.get("n").and_then(Json::as_i64).unwrap();
        assert!(n >= 1024, "quick mode starts at n = 1024, got {n}");
    }

    // The fit summary lands in both outputs too.
    if let Some(fit) = report.points.iter().find(|p| p.label == "fit") {
        let a = fit.get("a").and_then(Json::as_f64).unwrap();
        assert!(ascii.contains(&format!("{a:.2}")), "fit slope in ASCII");
    }

    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn exp_t7_env_var_output_matches_flag() {
    let dir = std::env::temp_dir().join("radio-bench-exp-json-env");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("t7_env.json");
    let _ = std::fs::remove_file(&json_path);

    let out = Command::new(env!("CARGO_BIN_EXE_radio-bench"))
        .args(["run", "t7", "--quick", "--trials", "2", "--seed", "5"])
        .env("RADIO_JSON_OUT", &json_path)
        .output()
        .expect("spawn radio-bench");
    assert!(out.status.success());
    let report = BenchReport::read(&json_path).expect("RADIO_JSON_OUT report parses");
    assert_eq!(report.experiment, "t7");
    assert_eq!(report.seed, 5);
    assert!(!report.points.is_empty());
    let _ = std::fs::remove_file(&json_path);
}
