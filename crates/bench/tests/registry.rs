//! Integration tests for the experiment registry: every experiment runs
//! at a smoke grid and emits a schema-valid bench report, and a parallel
//! `all` is bit-identical to a serial one (modulo wall-clock timing
//! fields, which [`BenchReport::without_timing_fields`] strips).

use radio_bench::common::ExpArgs;
use radio_bench::registry::{registry, run_experiment, run_many};
use radio_bench::report::BenchReport;

/// The smoke grid: quick mode, one trial, n capped at 256.
fn smoke_args(json_dir: Option<std::path::PathBuf>) -> ExpArgs {
    ExpArgs {
        quick: true,
        trials: Some(1),
        n_override: Some(256),
        json_dir,
        ..ExpArgs::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("radio-bench-registry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn smoke_grid_runs_and_parallel_matches_serial() {
    // ---- serial pass: every experiment at the smoke grid, JSON to disk ----
    let dir = temp_dir("smoke");
    let args = smoke_args(Some(dir.clone()));
    let serial: Vec<_> = registry()
        .into_iter()
        .map(|e| run_experiment(e, &args))
        .collect();
    assert_eq!(serial.len(), 17);

    for outcome in &serial {
        // The banner is part of the buffered output.
        assert!(
            outcome.output.starts_with("# Experiment E-"),
            "{}: missing banner in output",
            outcome.name
        );
        assert!(
            !outcome.report.points.is_empty(),
            "{}: report has no points at the smoke grid",
            outcome.name
        );
        // The written JSON round-trips through the versioned schema.
        let path = outcome
            .json_path
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no JSON written", outcome.name));
        assert_eq!(path, &dir.join(format!("{}.json", outcome.name)));
        let read = BenchReport::read(path)
            .unwrap_or_else(|e| panic!("{}: schema-invalid report: {e}", outcome.name));
        assert_eq!(read.points.len(), outcome.report.points.len());
        assert_eq!(read.seed, args.seed);
        assert_eq!(read.mode, "quick");
    }
    // Every registry name produced exactly one file.
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert_eq!(files.len(), 17);

    // ---- parallel pass: run_many must reproduce the serial outcomes ----
    let par_dir = temp_dir("par");
    let par_args = smoke_args(Some(par_dir.clone()));
    let parallel = run_many(&registry(), &par_args);
    assert_eq!(parallel.len(), serial.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "outcome order must match registry order");
        // Reports are bit-identical once wall-clock fields are stripped
        // (the summary experiment measures real time; everything else is
        // already exactly reproducible).
        let s_json = s.report.without_timing_fields().to_json().render_pretty();
        let p_json = p.report.without_timing_fields().to_json().render_pretty();
        assert_eq!(
            s_json, p_json,
            "{}: parallel report differs from serial",
            s.name
        );
        // Buffered stdout is byte-identical for experiments that do not
        // print wall-clock measurements.
        if !matches!(s.name, "summary" | "ablation") {
            assert_eq!(
                s.output, p.output,
                "{}: parallel output differs from serial",
                s.name
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&par_dir);
}
