//! The partition-recovery workload: spawn an in-process cluster, inject
//! broadcast ops and faults, and measure delivery under (and after) the
//! damage.
//!
//! Per trial: a connected G(n, p) gossip topology is sampled (components
//! chained if the draw is disconnected), a [`FaultPlan`] is generated
//! against it with node 0 exempt, and client `broadcast` ops are injected
//! at node 0 spread over the first quarter of the horizon.  The event
//! loop then runs: burst channels step, due messages deliver, ops land,
//! live nodes tick — all in deterministic order, so the whole trial is a
//! function of its seed.  Trials fan out through `run_trials`, which is
//! bit-identical serial vs. parallel, giving the `RADIO_THREADS`
//! independence that `scripts/check.sh` pins.
//!
//! Coverage is measured over the *eligible* set — nodes that never crash
//! and remain reachable from the source through never-crashing nodes —
//! since a node whose whole neighborhood is permanently dead cannot be
//! informed by any protocol.  Sleep, jam, loss, burst, and partitions are
//! all transient, so they delay but never shrink the eligible set.

use radio_broadcast::distributed::{EgDistributed, Restartable};
use radio_graph::components::DisjointSets;
use radio_graph::gnp::sample_gnp;
use radio_graph::{labeled_seed, Graph, NodeId, Xoshiro256pp};
use radio_sim::{run_trials, FaultConfig, FaultPlan};

use crate::msg::{Body, CLIENT};
use crate::net::{NetConfig, SimNet};
use crate::node::{client_msg, BackoffPolicy, GossipNode};
use crate::report::{percentile, NodeReport, NODE_REPORT_SCHEMA_VERSION};

/// Everything a workload run depends on (all of it seeds the report).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Cluster size.
    pub n: usize,
    /// Target mean gossip degree (edge probability is `degree / n`).
    pub degree: f64,
    /// Client broadcast ops per trial.
    pub ops: usize,
    /// Tick horizon per trial.
    pub ticks: u64,
    /// Independent trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Node-level fault generation (crash/sleep/jam/burst); the source
    /// is exempted automatically.
    pub faults: FaultConfig,
    /// Link-level faults: partitions, iid loss, delay jitter.
    pub net: NetConfig,
    /// Gossip retry policy.
    pub backoff: BackoffPolicy,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 64,
            degree: 12.0,
            ops: 16,
            ticks: 512,
            trials: 1,
            seed: 1,
            faults: FaultConfig::default(),
            net: NetConfig::default(),
            backoff: BackoffPolicy::default(),
        }
    }
}

/// The client op-injection point; [`FaultPlan::generate`] exempts it.
pub const SOURCE: NodeId = 0;

struct TrialStats {
    coverage: f64,
    converged: bool,
    protocol_msgs: u64,
    sent: u64,
    delivered: u64,
    dropped: u64,
    retries: u64,
    /// Per-(value, node) delivery latencies in ticks, ascending.
    latencies: Vec<u64>,
    stale_window_max: u64,
    post_heal_ticks: u64,
}

/// A connected gossip topology: G(n, p) with any stray components
/// chained onto the giant one so every node is reachable.
pub fn connected_topology(n: usize, degree: f64, rng: &mut Xoshiro256pp) -> Graph {
    let p = (degree / n as f64).min(1.0);
    let g = sample_gnp(n, p, rng);
    let mut sets = DisjointSets::new(n);
    for (u, v) in g.edges() {
        sets.union(u, v);
    }
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    // Chain the first node of every stray component onto node 0's
    // (unions accumulate, so later members of a chained component skip).
    for v in 1..n as NodeId {
        if !sets.connected(0, v) {
            edges.push((v - 1, v));
            sets.union(v - 1, v);
        }
    }
    Graph::from_edges(n, edges)
}

/// Nodes that never crash and stay reachable from [`SOURCE`] through
/// never-crashing nodes — the set coverage is measured over.
fn eligible_nodes(g: &Graph, plan: &FaultPlan, horizon: u64) -> Vec<bool> {
    let n = g.n();
    let alive = |v: NodeId| match plan.crash_round(v) {
        Some(r) => u64::from(r) > horizon,
        None => true,
    };
    let mut eligible = vec![false; n];
    if n == 0 || !alive(SOURCE) {
        return eligible;
    }
    let mut queue = std::collections::VecDeque::from([SOURCE]);
    eligible[SOURCE as usize] = true;
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            if !eligible[w as usize] && alive(w) {
                eligible[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    eligible
}

fn run_trial(cfg: &WorkloadConfig, trial_master: u64) -> TrialStats {
    let n = cfg.n;
    let mut topo_rng = Xoshiro256pp::new(labeled_seed(trial_master, "node/topo"));
    let g = connected_topology(n, cfg.degree, &mut topo_rng);
    let mut faults = cfg.faults;
    faults.exempt = Some(SOURCE);
    let plan = FaultPlan::generate(&g, &faults, labeled_seed(trial_master, "node/faults"));
    let eligible = eligible_nodes(&g, &plan, cfg.ticks);
    let eligible_count = eligible.iter().filter(|&&e| e).count().max(1);

    let mut net = SimNet::new(
        n,
        plan,
        cfg.net.clone(),
        labeled_seed(trial_master, "node/net"),
    );
    let node_master = labeled_seed(trial_master, "node/protocol");
    let p = (cfg.degree / n as f64).min(1.0);
    let mut nodes: Vec<GossipNode<Restartable<EgDistributed>>> = (0..n as NodeId)
        .map(|id| {
            GossipNode::new(
                Restartable::auto(EgDistributed::new(p)),
                id,
                n,
                g.neighbors(id).to_vec(),
                node_master,
                cfg.backoff,
            )
        })
        .collect();

    // Op j lands at source at `1 + floor(j · window / ops)`, values
    // 1000, 1001, ...; the remaining ¾ of the horizon is recovery time.
    let window = (cfg.ticks / 4).max(1);
    let inject_tick = |j: usize| 1 + (j as u64 * window) / cfg.ops.max(1) as u64;
    let value_of = |j: usize| 1_000 + j as u64;

    let mut next_op = 0usize;
    let mut convergence_tick: Option<u64> = None;
    for tick in 1..=cfg.ticks {
        net.begin_tick(tick);
        for msg in net.deliver_due(tick) {
            let dest = msg.dest;
            for out in nodes[dest as usize].handle(msg, tick) {
                if out.dest != CLIENT {
                    net.send(tick, out);
                }
            }
        }
        while next_op < cfg.ops && inject_tick(next_op) <= tick {
            let op = client_msg(
                SOURCE,
                Body::Broadcast {
                    msg_id: next_op as u64,
                    value: value_of(next_op),
                },
            );
            // Client replies (broadcast_ok) go back to the driver, not
            // the network.
            let _ = nodes[SOURCE as usize].handle(op, tick);
            next_op += 1;
        }
        for (id, node) in nodes.iter_mut().enumerate() {
            if net.node_up(id as NodeId, tick) {
                for out in node.on_tick(tick) {
                    net.send(tick, out);
                }
            }
        }
        if next_op == cfg.ops && convergence_tick.is_none() {
            let covered = (0..n)
                .filter(|&v| eligible[v] && nodes[v].values().len() >= cfg.ops)
                .count();
            if covered == eligible_count {
                convergence_tick = Some(tick);
                break;
            }
        }
    }

    let covered = (0..n)
        .filter(|&v| eligible[v] && nodes[v].values().len() >= cfg.ops)
        .count();
    let mut latencies = Vec::new();
    let mut stale_window_max = 0u64;
    for j in 0..next_op {
        let (value, injected) = (value_of(j), inject_tick(j));
        let mut last = injected;
        for v in 0..n {
            if !eligible[v] {
                continue;
            }
            if let Some(t) = nodes[v].learned_at(value) {
                latencies.push(t.saturating_sub(injected));
                last = last.max(t);
            }
        }
        stale_window_max = stale_window_max.max(last - injected);
    }
    latencies.sort_unstable();

    let protocol_msgs: u64 = nodes
        .iter()
        .map(|nd| nd.counters.gossip_sent + nd.counters.acks_sent)
        .sum();
    let retries: u64 = nodes.iter().map(|nd| nd.counters.retries).sum();
    let heal = net.heal_tick();
    TrialStats {
        coverage: covered as f64 / eligible_count as f64,
        converged: convergence_tick.is_some(),
        protocol_msgs,
        sent: net.stats.sent,
        delivered: net.stats.delivered,
        dropped: net.stats.dropped(),
        retries,
        latencies,
        stale_window_max,
        post_heal_ticks: if heal == 0 {
            0
        } else {
            convergence_tick.map_or(0, |t| t.saturating_sub(heal))
        },
    }
}

/// Runs the full workload (all trials, parallel-safe) and aggregates a
/// [`NodeReport`].
pub fn run_workload(cfg: &WorkloadConfig) -> NodeReport {
    let started = std::time::Instant::now();
    let trials = run_trials(cfg.trials.max(1), cfg.seed, |_, rng| {
        run_trial(cfg, rng.next())
    });

    let mut coverage = f64::INFINITY;
    let mut converged_trials = 0;
    let mut latencies = Vec::new();
    let (mut msgs, mut sent, mut delivered, mut dropped, mut retries) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut stale, mut post_heal) = (0u64, 0u64);
    for t in &trials {
        coverage = coverage.min(t.coverage);
        converged_trials += t.converged as usize;
        latencies.extend_from_slice(&t.latencies);
        msgs += t.protocol_msgs;
        sent += t.sent;
        delivered += t.delivered;
        dropped += t.dropped;
        retries += t.retries;
        stale = stale.max(t.stale_window_max);
        post_heal = post_heal.max(t.post_heal_ticks);
    }
    latencies.sort_unstable();
    let total_ops = (cfg.ops * trials.len()).max(1);
    NodeReport {
        schema_version: NODE_REPORT_SCHEMA_VERSION,
        n: cfg.n,
        ops: cfg.ops,
        ticks: cfg.ticks,
        trials: trials.len(),
        seed: cfg.seed,
        coverage: if coverage.is_finite() { coverage } else { 0.0 },
        converged_trials,
        msgs_per_op: msgs as f64 / total_ops as f64,
        msgs_sent: sent,
        msgs_delivered: delivered,
        msgs_dropped: dropped,
        delivery_p50: percentile(&latencies, 50),
        delivery_p99: percentile(&latencies, 99),
        stale_window_max: stale,
        post_heal_ticks: post_heal,
        retries,
        wall_ns: started.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Partition;

    #[test]
    fn topology_is_always_connected() {
        for seed in [1, 2, 3] {
            // degree 1.5 < ln n: the raw draw is almost surely
            // disconnected, exercising the chaining fix-up.
            let mut rng = Xoshiro256pp::new(seed);
            let g = connected_topology(100, 1.5, &mut rng);
            let dist = radio_graph::bfs::bfs_distances(&g, 0);
            assert!(
                dist.iter().all(|&d| d != u32::MAX),
                "seed {seed}: disconnected"
            );
        }
    }

    #[test]
    fn quiet_network_converges_with_full_coverage() {
        let cfg = WorkloadConfig {
            n: 48,
            ops: 8,
            ticks: 400,
            seed: 7,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&cfg);
        assert_eq!(report.coverage, 1.0, "{report:?}");
        assert_eq!(report.converged_trials, 1);
        assert!(report.msgs_per_op > 0.0);
        assert!(report.delivery_p50 <= report.delivery_p99);
        assert_eq!(report.post_heal_ticks, 0, "no partitions to heal");
    }

    #[test]
    fn partition_delays_convergence_but_heals() {
        let quiet = WorkloadConfig {
            n: 48,
            ops: 8,
            ticks: 600,
            seed: 7,
            ..WorkloadConfig::default()
        };
        let mut cut = quiet.clone();
        cut.net.partitions = vec![Partition {
            from: 1,
            to: 120,
            groups: 2,
        }];
        let (a, b) = (run_workload(&quiet), run_workload(&cut));
        assert_eq!(b.coverage, 1.0, "recovers after heal: {b:?}");
        assert!(b.post_heal_ticks > 0, "{b:?}");
        assert!(
            b.delivery_p99 > a.delivery_p99,
            "partition must stretch the latency tail: {} vs {}",
            b.delivery_p99,
            a.delivery_p99
        );
        assert!(b.msgs_dropped > a.msgs_dropped);
    }

    #[test]
    fn crash_faults_keep_eligible_coverage_full() {
        let mut cfg = WorkloadConfig {
            n: 64,
            ops: 8,
            ticks: 600,
            seed: 11,
            trials: 2,
            ..WorkloadConfig::default()
        };
        cfg.faults = FaultConfig::parse("crash=0.1,sleep=0.1").unwrap();
        let report = run_workload(&cfg);
        assert_eq!(report.coverage, 1.0, "{report:?}");
        assert_eq!(report.converged_trials, 2);
    }

    #[test]
    fn same_seed_runs_are_byte_identical_after_strip() {
        let mut cfg = WorkloadConfig {
            n: 40,
            ops: 6,
            ticks: 400,
            seed: 3,
            trials: 2,
            ..WorkloadConfig::default()
        };
        cfg.faults = FaultConfig::parse("crash=0.05").unwrap();
        cfg.net.loss = 0.05;
        cfg.net.partitions = vec![Partition {
            from: 5,
            to: 60,
            groups: 2,
        }];
        let a = run_workload(&cfg).strip_timing().to_json().render();
        let b = run_workload(&cfg).strip_timing().to_json().render();
        assert_eq!(a, b);
        let mut other = cfg.clone();
        other.seed = 4;
        assert_ne!(a, run_workload(&other).strip_timing().to_json().render());
    }
}
