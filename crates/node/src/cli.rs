//! The `radio-node` command-line front end.
//!
//! ```text
//! radio-node workload --nodes N [--degree D] [--ops K] [--ticks T] [--trials R]
//!                     [--seed S] [--faults SPEC] [--partition FROM:LEN[:GROUPS]]...
//!                     [--loss P] [--jitter J] [--backoff BASE:FACTOR:CAP]
//!                     [--assert-coverage X] [--strip-timing] [--json]
//! radio-node node     [--seed S] [--degree D]
//! ```
//!
//! `workload` drives an in-process cluster and prints a
//! [`NodeReport`](crate::report::NodeReport)
//! (text by default, one JSON line with `--json`).  `node` speaks the
//! Maelstrom JSON-lines protocol on stdin/stdout: an `init` envelope
//! first, then `topology` / `broadcast` / `read` / `gossip` /
//! `gossip_ack` / `tick` messages, one per line.  `radio-cli node ...`
//! forwards here, mirroring the `bench` forwarding.

use radio_broadcast::distributed::{EgDistributed, Restartable};
use radio_sim::FaultConfig;
use std::io::{BufRead, Write};

use crate::msg::{Body, Message};
use crate::net::Partition;
use crate::node::{BackoffPolicy, GossipNode};
use crate::workload::{run_workload, WorkloadConfig};

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "radio-node — deterministic message-passing broadcast service

  radio-node workload --nodes N [--degree D] [--ops K] [--ticks T] [--trials R]
                      [--seed S] [--faults SPEC] [--partition FROM:LEN[:GROUPS]]...
                      [--loss P] [--jitter J] [--backoff BASE:FACTOR:CAP]
                      [--assert-coverage X] [--strip-timing] [--json]
  radio-node node     [--seed S] [--degree D]

faults SPEC is the radio-cli grammar: crash=RATE[@H],sleep=RATE[@H],jam=K,burst=PB:PG
examples:
  radio-node workload --nodes 1024 --ops 32 --partition 10:120 --faults crash=0.05 --json
  echo '{{\"src\":4294967295,\"dest\":0,\"body\":{{\"type\":\"init\",\"msg_id\":1,\"node_id\":0,\"n\":4}}}}' | radio-node node"
    );
    std::process::exit(2);
}

fn parse_backoff(spec: &str) -> Result<BackoffPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [base, factor, cap] = parts[..] else {
        return Err(format!("backoff {spec:?} is not BASE:FACTOR:CAP"));
    };
    let int = |what: &str, s: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("backoff {what}: bad integer {s:?}"))
    };
    let policy = BackoffPolicy {
        base: int("BASE", base)?.max(1),
        factor: int("FACTOR", factor)?.max(1),
        cap: int("CAP", cap)?.max(1),
    };
    Ok(policy)
}

struct WorkloadArgs {
    cfg: WorkloadConfig,
    assert_coverage: Option<f64>,
    strip_timing: bool,
    json: bool,
}

fn parse_workload(rest: &[String]) -> Result<WorkloadArgs, String> {
    let mut out = WorkloadArgs {
        cfg: WorkloadConfig::default(),
        assert_coverage: None,
        strip_timing: false,
        json: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--nodes" => out.cfg.n = value()?.parse().map_err(|_| "bad --nodes")?,
            "--degree" => out.cfg.degree = value()?.parse().map_err(|_| "bad --degree")?,
            "--ops" => out.cfg.ops = value()?.parse().map_err(|_| "bad --ops")?,
            "--ticks" => out.cfg.ticks = value()?.parse().map_err(|_| "bad --ticks")?,
            "--trials" => out.cfg.trials = value()?.parse().map_err(|_| "bad --trials")?,
            "--seed" => out.cfg.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--faults" => out.cfg.faults = FaultConfig::parse(value()?)?,
            "--partition" => out.cfg.net.partitions.push(Partition::parse(value()?)?),
            "--loss" => {
                let p: f64 = value()?.parse().map_err(|_| "bad --loss")?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("--loss {p} outside [0, 1]"));
                }
                out.cfg.net.loss = p;
            }
            "--jitter" => {
                out.cfg.net.delay_jitter = value()?.parse().map_err(|_| "bad --jitter")?
            }
            "--backoff" => out.cfg.backoff = parse_backoff(value()?)?,
            "--assert-coverage" => {
                out.assert_coverage = Some(value()?.parse().map_err(|_| "bad --assert-coverage")?)
            }
            "--strip-timing" => out.strip_timing = true,
            "--json" => out.json = true,
            other => return Err(format!("unknown workload flag {other}")),
        }
    }
    if out.cfg.n == 0 || out.cfg.ops == 0 || out.cfg.ticks == 0 {
        return Err("--nodes, --ops, and --ticks must be positive".into());
    }
    Ok(out)
}

fn cmd_workload(rest: &[String]) {
    let args = match parse_workload(rest) {
        Ok(a) => a,
        Err(e) => usage(&e),
    };
    let mut report = run_workload(&args.cfg);
    if args.strip_timing {
        report = report.strip_timing();
    }
    if args.json {
        println!("{}", report.to_json().render());
    } else {
        println!(
            "radio-node workload: n={} ops={} trials={} seed={}",
            report.n, report.ops, report.trials, report.seed
        );
        println!(
            "  coverage {:.4} ({}/{} trials converged)",
            report.coverage, report.converged_trials, report.trials
        );
        println!(
            "  msgs/op {:.2}  sent {}  delivered {}  dropped {}  retries {}",
            report.msgs_per_op,
            report.msgs_sent,
            report.msgs_delivered,
            report.msgs_dropped,
            report.retries
        );
        println!(
            "  delivery p50 {} p99 {} ticks  stale-window max {}  post-heal {}",
            report.delivery_p50,
            report.delivery_p99,
            report.stale_window_max,
            report.post_heal_ticks
        );
    }
    if let Some(min) = args.assert_coverage {
        if report.coverage < min {
            eprintln!(
                "error: coverage {:.4} below required {:.4}",
                report.coverage, min
            );
            std::process::exit(1);
        }
    }
}

/// The stdio node loop, split from `cmd_node` so tests can drive it with
/// in-memory readers and writers.
pub fn node_loop<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    seed: u64,
    degree: f64,
) -> Result<(), String> {
    let mut node: Option<GossipNode<Restartable<EgDistributed>>> = None;
    let mut tick = 1u64;
    for line in input.lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let msg = Message::from_line(&line)?;
        let replies = match (&mut node, &msg.body) {
            (slot @ None, Body::Init { msg_id, node_id, n }) => {
                let n = *n as usize;
                let p = (degree / n.max(1) as f64).min(1.0);
                let mut fresh = GossipNode::new(
                    Restartable::auto(EgDistributed::new(p)),
                    *node_id,
                    n,
                    Vec::new(),
                    seed,
                    BackoffPolicy::default(),
                );
                let replies = fresh.handle(msg.clone(), tick);
                *slot = Some(fresh);
                debug_assert!(matches!(
                    replies[0].body,
                    Body::InitOk { in_reply_to } if in_reply_to == *msg_id
                ));
                replies
            }
            (None, _) => return Err(format!("first message must be init, got {line}")),
            (Some(_), Body::Init { .. }) => return Err("duplicate init".into()),
            (Some(node), body) => {
                if let Body::Tick { tick: t } = body {
                    tick = (*t).max(tick);
                }
                node.handle(msg.clone(), tick)
            }
        };
        for reply in replies {
            writeln!(output, "{}", reply.to_line()).map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_node(rest: &[String]) {
    let (mut seed, mut degree) = (1u64, 12.0f64);
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> &String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--degree" => degree = value().parse().unwrap_or_else(|_| usage("bad --degree")),
            other => usage(&format!("unknown node flag {other}")),
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = node_loop(stdin.lock(), stdout.lock(), seed, degree) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Entry point shared by the `radio-node` binary and the `radio-cli node`
/// forwarding.
pub fn cli_main(argv: Vec<String>) {
    match argv.first().map(String::as_str) {
        None | Some("--help") | Some("-h") | Some("help") => usage(""),
        Some("workload") => cmd_workload(&argv[1..]),
        Some("node") => cmd_node(&argv[1..]),
        Some(other) => usage(&format!("unknown subcommand {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::CLIENT;

    #[test]
    fn backoff_spec_parses() {
        assert_eq!(
            parse_backoff("2:3:50").unwrap(),
            BackoffPolicy {
                base: 2,
                factor: 3,
                cap: 50
            }
        );
        assert!(parse_backoff("2:3").is_err());
        assert!(parse_backoff("a:b:c").is_err());
    }

    #[test]
    fn workload_flags_build_a_config() {
        let argv: Vec<String> = [
            "--nodes",
            "128",
            "--ops",
            "4",
            "--ticks",
            "300",
            "--seed",
            "9",
            "--loss",
            "0.1",
            "--partition",
            "5:20:4",
            "--faults",
            "crash=0.1",
            "--backoff",
            "1:2:16",
            "--strip-timing",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse_workload(&argv).unwrap();
        assert_eq!(args.cfg.n, 128);
        assert_eq!(args.cfg.net.partitions.len(), 1);
        assert_eq!(args.cfg.net.partitions[0].groups, 4);
        assert_eq!(args.cfg.faults.crash_rate, 0.1);
        assert_eq!(args.cfg.backoff.cap, 16);
        assert!(args.strip_timing && args.json);
        assert!(parse_workload(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn stdio_node_speaks_the_wire_protocol() {
        let script = [
            Message {
                src: CLIENT,
                dest: 0,
                body: Body::Init {
                    msg_id: 1,
                    node_id: 0,
                    n: 4,
                },
            },
            Message {
                src: CLIENT,
                dest: 0,
                body: Body::Topology {
                    msg_id: 2,
                    neighbors: vec![1, 2],
                },
            },
            Message {
                src: CLIENT,
                dest: 0,
                body: Body::Broadcast {
                    msg_id: 3,
                    value: 41,
                },
            },
            Message {
                src: CLIENT,
                dest: 0,
                body: Body::Read { msg_id: 4 },
            },
        ];
        let input: String = script.iter().map(|m| m.to_line() + "\n").collect();
        let mut out = Vec::new();
        node_loop(input.as_bytes(), &mut out, 7, 12.0).unwrap();
        let lines: Vec<Message> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Message::from_line(l).unwrap())
            .collect();
        assert!(matches!(lines[0].body, Body::InitOk { in_reply_to: 1 }));
        assert!(matches!(lines[1].body, Body::TopologyOk { in_reply_to: 2 }));
        assert!(matches!(
            lines[2].body,
            Body::BroadcastOk { in_reply_to: 3 }
        ));
        match &lines[3].body {
            Body::ReadOk {
                in_reply_to,
                values,
            } => {
                assert_eq!(*in_reply_to, 4);
                assert_eq!(values, &[41]);
            }
            other => panic!("expected read_ok, got {other:?}"),
        }
    }

    #[test]
    fn stdio_node_rejects_protocol_violations() {
        let broadcast_first =
            "{\"src\":4294967295,\"dest\":0,\"body\":{\"type\":\"read\",\"msg_id\":1}}\n";
        let mut out = Vec::new();
        assert!(node_loop(broadcast_first.as_bytes(), &mut out, 7, 12.0).is_err());
        assert!(node_loop("not json\n".as_bytes(), &mut out, 7, 12.0).is_err());
    }
}
