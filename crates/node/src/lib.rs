//! A deterministic message-passing broadcast *service* over the paper's
//! protocol stack: Maelstrom-style JSON-lines nodes, an in-tree
//! event-loop network with fault injection, and a partition-recovery
//! workload driver.
//!
//! Where `radio-sim` runs the Theorem-7 protocol as a lock-step round
//! simulation, this crate runs it as a *system*: each [`GossipNode`]
//! owns its state and RNG stream, exchanges typed [`Message`]s through a
//! [`SimNet`] event queue, and layers a gossip/ack/retry machine on top
//! of the Thm-7 transmit cadence ([`EventDriven`] supplies it).  The
//! network adapts the round engines' [`FaultPlan`](radio_sim::FaultPlan)
//! into link faults — crash, sleep, jam, Gilbert–Elliott burst — and
//! adds partitions, iid loss, and delay jitter of its own.
//!
//! # Determinism contract
//!
//! A workload run is a pure function of its [`WorkloadConfig`]: no wall
//! clock, no thread timing, no iteration over unordered maps.  Every RNG
//! stream derives from the master seed by label (`node/topo`,
//! `node/faults`, `node/net`, `node/protocol`) or by node id, trials fan
//! out through `run_trials` (parallel == serial, bit for bit), and the
//! event queue breaks delivery ties by global send order.  Two runs with
//! the same seed produce byte-identical [`NodeReport`]s (after
//! [`NodeReport::strip_timing`]) at any `RADIO_THREADS` setting —
//! `scripts/check.sh` enforces exactly that.
//!
//! [`EventDriven`]: radio_broadcast::distributed::EventDriven

#![warn(missing_docs)]

pub mod cli;
pub mod msg;
pub mod net;
pub mod node;
pub mod report;
pub mod workload;

pub use msg::{Body, Message, CLIENT};
pub use net::{NetConfig, NetStats, Partition, SimNet};
pub use node::{AckState, BackoffPolicy, GossipNode, NodeCounters};
pub use report::{percentile, NodeReport, NODE_REPORT_SCHEMA_VERSION};
pub use workload::{connected_topology, run_workload, WorkloadConfig, SOURCE};
