//! The broadcast service node: gossip with per-peer acks, capped
//! exponential-backoff retries, and a Thm-7 transmit cadence.
//!
//! A [`GossipNode`] holds a grow-only set of values and, for every
//! `(peer, value)` pair, an [`AckState`]:
//!
//! ```text
//!           send gossip                    GossipAck / peer gossips v back
//! (absent) ────────────► SentUnconfirmed ────────────────────────────────► Confirmed
//!    │
//!    │ peer gossips v to us (peer evidently holds v; ack sent at once)
//!    └───────────► ReceivedUnconfirmed   (terminal — nothing owed)
//! ```
//!
//! Unconfirmed sends retry with exponential backoff
//! (`min(base · factor^(attempts−1), cap)` ticks), so a value keeps being
//! re-offered to a partitioned or sleeping peer until the link heals and
//! an ack finally lands — that retry loop *is* the partition-recovery
//! mechanism.  All sends are additionally gated by the wrapped protocol's
//! transmit cadence ([`EventDriven`]): on ticks where Thm-7 would stay
//! silent the node stays silent, which keeps per-tick channel load at the
//! paper's level instead of flooding.

use radio_broadcast::distributed::EventDriven;
use radio_graph::NodeId;
use radio_sim::Protocol;
use std::collections::{BTreeMap, BTreeSet};

use crate::msg::{Body, Message, CLIENT};

/// Retry-delay policy: attempt `k` (1-based) schedules the next retry
/// `min(base · factor^(k−1), cap)` ticks out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay after the first send, in ticks (≥ 1).
    pub base: u64,
    /// Multiplier per failed attempt (≥ 1).
    pub factor: u64,
    /// Ceiling on the delay, in ticks.
    pub cap: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: 2,
            factor: 2,
            cap: 64,
        }
    }
}

impl BackoffPolicy {
    /// The delay scheduled after `attempts` sends (saturating, capped).
    pub fn delay(&self, attempts: u32) -> u64 {
        let mut d = self.base;
        for _ in 1..attempts.max(1) {
            d = d.saturating_mul(self.factor);
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap).max(1)
    }
}

/// Delivery state of one value at one peer, from this node's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckState {
    /// We offered the value and have no evidence the peer holds it.
    SentUnconfirmed {
        /// Sends so far (≥ 1).
        attempts: u32,
        /// Next tick at which a retry is due.
        next_retry: u64,
    },
    /// We learned the value *from* this peer — they hold it; nothing owed.
    ReceivedUnconfirmed,
    /// The peer confirmed receipt (ack, or gossiped the value back).
    Confirmed,
}

/// Message-economy counters for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeCounters {
    /// `gossip` messages sent (first offers and retries).
    pub gossip_sent: u64,
    /// `gossip_ack` messages sent.
    pub acks_sent: u64,
    /// Retries among `gossip_sent` (attempts beyond the first).
    pub retries: u64,
}

/// One deterministic broadcast-service node.
#[derive(Debug)]
pub struct GossipNode<P: Protocol> {
    id: NodeId,
    peers: Vec<NodeId>,
    values: BTreeSet<u64>,
    /// value → tick first learned.
    first_learned: BTreeMap<u64, u64>,
    /// peer → value → state.  BTree maps keep iteration (and therefore
    /// message emission) in a deterministic order.
    acks: BTreeMap<NodeId, BTreeMap<u64, AckState>>,
    cadence: EventDriven<P>,
    backoff: BackoffPolicy,
    /// Message counters.
    pub counters: NodeCounters,
}

impl<P: Protocol> GossipNode<P> {
    /// A node with identity `id` in a cluster of `n`, gossiping to
    /// `peers`.  `proto` supplies the transmit cadence; its RNG stream is
    /// `child_rng(master, id)`, so a cluster rebuilt from the same master
    /// seed replays exactly.
    pub fn new(
        proto: P,
        id: NodeId,
        n: usize,
        peers: Vec<NodeId>,
        master: u64,
        backoff: BackoffPolicy,
    ) -> GossipNode<P> {
        GossipNode {
            id,
            peers,
            values: BTreeSet::new(),
            first_learned: BTreeMap::new(),
            acks: BTreeMap::new(),
            cadence: EventDriven::new(proto, id, n, master),
            backoff,
            counters: NodeCounters::default(),
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The gossip peer set.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Every value the node holds, ascending.
    pub fn values(&self) -> &BTreeSet<u64> {
        &self.values
    }

    /// The tick at which `value` was first learned, if held.
    pub fn learned_at(&self, value: u64) -> Option<u64> {
        self.first_learned.get(&value).copied()
    }

    /// The ack state of `value` at `peer`, if any.
    pub fn ack_state(&self, peer: NodeId, value: u64) -> Option<AckState> {
        self.acks.get(&peer).and_then(|m| m.get(&value)).copied()
    }

    /// Values still awaiting confirmation from some peer.
    pub fn unconfirmed(&self) -> usize {
        self.acks
            .values()
            .flat_map(|m| m.values())
            .filter(|s| matches!(s, AckState::SentUnconfirmed { .. }))
            .count()
    }

    fn learn(&mut self, value: u64, now: u64) -> bool {
        if self.values.insert(value) {
            self.first_learned.insert(value, now);
            self.cadence.inform(now);
            true
        } else {
            false
        }
    }

    /// Handles one incoming message at `now`, returning the messages to
    /// send in response.
    pub fn handle(&mut self, msg: Message, now: u64) -> Vec<Message> {
        let (id, peer) = (self.id, msg.src);
        let reply = move |body: Body| {
            vec![Message {
                src: id,
                dest: peer,
                body,
            }]
        };
        match &msg.body {
            Body::Init { msg_id, .. } => reply(Body::InitOk {
                in_reply_to: *msg_id,
            }),
            Body::Topology { msg_id, neighbors } => {
                self.peers = neighbors.clone();
                reply(Body::TopologyOk {
                    in_reply_to: *msg_id,
                })
            }
            Body::Broadcast { msg_id, value } => {
                self.learn(*value, now);
                reply(Body::BroadcastOk {
                    in_reply_to: *msg_id,
                })
            }
            Body::Read { msg_id } => reply(Body::ReadOk {
                in_reply_to: *msg_id,
                values: self.values.iter().copied().collect(),
            }),
            Body::Gossip { values } => {
                let values = values.clone();
                let peer = msg.src;
                for &v in &values {
                    self.learn(v, now);
                    let slot = self.acks.entry(peer).or_default().entry(v);
                    // The peer holds v.  An outstanding offer of ours is
                    // thereby confirmed; otherwise record that v came
                    // from them (terminal — we owe only the ack below).
                    use std::collections::btree_map::Entry;
                    match slot {
                        Entry::Occupied(mut e) => {
                            if matches!(e.get(), AckState::SentUnconfirmed { .. }) {
                                e.insert(AckState::Confirmed);
                            }
                        }
                        Entry::Vacant(e) => {
                            e.insert(AckState::ReceivedUnconfirmed);
                        }
                    }
                }
                self.counters.acks_sent += 1;
                reply(Body::GossipAck { values })
            }
            Body::GossipAck { values } => {
                if let Some(per_peer) = self.acks.get_mut(&msg.src) {
                    for v in values {
                        if let Some(s @ AckState::SentUnconfirmed { .. }) = per_peer.get_mut(v) {
                            *s = AckState::Confirmed;
                        }
                    }
                }
                Vec::new()
            }
            Body::Tick { tick } => self.on_tick(*tick),
            // Replies addressed to the client; a node ignores them.
            Body::InitOk { .. }
            | Body::TopologyOk { .. }
            | Body::BroadcastOk { .. }
            | Body::ReadOk { .. } => Vec::new(),
        }
    }

    /// Advances the node's clock to `now`: if the Thm-7 cadence elects to
    /// transmit, offers each peer every value that is due (unsent, or
    /// unconfirmed past its retry deadline), bundled into one `gossip`
    /// per peer.
    pub fn on_tick(&mut self, now: u64) -> Vec<Message> {
        if !self.cadence.wants_transmit(now) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            let per_peer = self.acks.entry(peer).or_default();
            let mut due = Vec::new();
            for &v in &self.values {
                match per_peer.get_mut(&v) {
                    None => {
                        due.push(v);
                        per_peer.insert(
                            v,
                            AckState::SentUnconfirmed {
                                attempts: 1,
                                next_retry: now + self.backoff.delay(1),
                            },
                        );
                    }
                    Some(AckState::SentUnconfirmed {
                        attempts,
                        next_retry,
                    }) if *next_retry <= now => {
                        due.push(v);
                        *attempts = attempts.saturating_add(1);
                        *next_retry = now + self.backoff.delay(*attempts);
                        self.counters.retries += 1;
                    }
                    _ => {}
                }
            }
            if !due.is_empty() {
                self.counters.gossip_sent += 1;
                out.push(Message {
                    src: self.id,
                    dest: peer,
                    body: Body::Gossip { values: due },
                });
            }
        }
        out
    }
}

/// Convenience: a client envelope addressed to `dest`.
pub fn client_msg(dest: NodeId, body: Body) -> Message {
    Message {
        src: CLIENT,
        dest,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_broadcast::distributed::Flooding;

    fn node(id: NodeId, peers: Vec<NodeId>) -> GossipNode<Flooding> {
        // Flooding transmits every tick once informed, so cadence never
        // hides the ack machine in these tests.
        GossipNode::new(Flooding, id, 8, peers, 99, BackoffPolicy::default())
    }

    #[test]
    fn backoff_delays_grow_then_cap() {
        let b = BackoffPolicy {
            base: 2,
            factor: 3,
            cap: 50,
        };
        assert_eq!(b.delay(1), 2);
        assert_eq!(b.delay(2), 6);
        assert_eq!(b.delay(3), 18);
        assert_eq!(b.delay(4), 50);
        assert_eq!(b.delay(40), 50, "saturates at the cap, no overflow");
    }

    #[test]
    fn broadcast_then_gossip_then_ack_reaches_confirmed() {
        let mut a = node(0, vec![1]);
        let mut b = node(1, vec![0]);
        let replies = a.handle(
            client_msg(
                0,
                Body::Broadcast {
                    msg_id: 9,
                    value: 7,
                },
            ),
            1,
        );
        assert!(matches!(
            replies[0].body,
            Body::BroadcastOk { in_reply_to: 9 }
        ));
        // a offers 7 to b.
        let out = a.on_tick(2);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            a.ack_state(1, 7),
            Some(AckState::SentUnconfirmed { attempts: 1, .. })
        ));
        // b learns it, remembers the provenance, and acks.
        let acks = b.handle(out[0].clone(), 3);
        assert!(b.values().contains(&7));
        assert_eq!(b.learned_at(7), Some(3));
        assert_eq!(b.ack_state(0, 7), Some(AckState::ReceivedUnconfirmed));
        assert!(matches!(acks[0].body, Body::GossipAck { .. }));
        // the ack confirms a's offer.
        a.handle(acks[0].clone(), 4);
        assert_eq!(a.ack_state(1, 7), Some(AckState::Confirmed));
        assert_eq!(a.unconfirmed(), 0);
        // b never re-offers to 0 (ReceivedUnconfirmed is terminal) but a
        // stays quiet too: nothing due.
        assert!(a.on_tick(10).is_empty());
    }

    #[test]
    fn lost_gossip_retries_with_growing_gaps() {
        let mut a = node(0, vec![1]);
        a.handle(
            client_msg(
                0,
                Body::Broadcast {
                    msg_id: 1,
                    value: 5,
                },
            ),
            1,
        );
        let mut send_ticks = Vec::new();
        for t in 2..40 {
            if !a.on_tick(t).is_empty() {
                send_ticks.push(t);
            }
        }
        // base=2, factor=2: sends at 2, then +2, +4, +8, +16 → 4, 8, 16, 32.
        assert_eq!(send_ticks, vec![2, 4, 8, 16, 32]);
        assert_eq!(a.counters.retries, 4);
        // An eventual incoming gossip of the same value also confirms.
        let from_peer = Message {
            src: 1,
            dest: 0,
            body: Body::Gossip { values: vec![5] },
        };
        a.handle(from_peer, 40);
        assert_eq!(a.ack_state(1, 5), Some(AckState::Confirmed));
        assert!(a.on_tick(41).is_empty());
    }

    #[test]
    fn reads_and_topology_follow_the_wire_contract() {
        let mut a = node(3, vec![]);
        let out = a.handle(
            client_msg(
                3,
                Body::Topology {
                    msg_id: 2,
                    neighbors: vec![1, 5],
                },
            ),
            1,
        );
        assert!(matches!(out[0].body, Body::TopologyOk { in_reply_to: 2 }));
        assert_eq!(a.peers(), &[1, 5]);
        a.handle(
            client_msg(
                3,
                Body::Broadcast {
                    msg_id: 3,
                    value: 9,
                },
            ),
            2,
        );
        a.handle(
            client_msg(
                3,
                Body::Broadcast {
                    msg_id: 4,
                    value: 4,
                },
            ),
            3,
        );
        let out = a.handle(client_msg(3, Body::Read { msg_id: 5 }), 4);
        match &out[0].body {
            Body::ReadOk {
                in_reply_to,
                values,
            } => {
                assert_eq!(*in_reply_to, 5);
                assert_eq!(values, &[4, 9], "ascending");
            }
            other => panic!("expected read_ok, got {other:?}"),
        }
        assert_eq!(out[0].dest, CLIENT);
    }

    #[test]
    fn uninformed_nodes_stay_silent() {
        let mut a = node(0, vec![1, 2]);
        for t in 1..20 {
            assert!(a.on_tick(t).is_empty());
        }
        assert_eq!(a.counters.gossip_sent, 0);
    }
}
