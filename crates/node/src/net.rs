//! Deterministic event-loop network with link-level fault injection.
//!
//! [`SimNet`] is the cluster's only transport: a priority queue of
//! in-flight [`Message`]s ordered by `(deliver_at, seq)`, where `seq` is a
//! global send counter — total order, no wall clock, no threads, so a run
//! is a pure function of the master seed.  Time is an integer tick; one
//! protocol *round* of the lock-step engines maps to one tick here.
//!
//! The fault surface adapts [`FaultPlan`] — built for the round engines —
//! into link faults, plus two net-only fault axes the round barrier cannot
//! express:
//!
//! | plan fault | link semantics |
//! |---|---|
//! | crash(v, r) | from tick `r`, v sends nothing and all deliveries to v drop |
//! | sleep(v, w) | same as crash for ticks `< w`, then the node is up |
//! | jam(v, a..=b) | every link incident to v drops messages delivered in the window |
//! | burst (GE) | per-receiver two-state channel, stepped once per tick in id order; deliveries to a bad channel drop |
//! | — partitions | group links cut for a tick window ([`Partition`]) |
//! | — iid loss | per-message drop, decided by a seed/src/dest/seq hash |
//!
//! Drop decisions for crash/sleep/jam/burst/partition are evaluated at
//! **delivery** time (a message crossing a window boundary in flight is
//! lost — links have no memory), while iid loss and delay jitter are
//! decided at **send** time from a SplitMix64 hash so they are independent
//! of delivery order.

use radio_graph::{labeled_seed, NodeId, Xoshiro256pp};
use radio_sim::FaultPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::msg::Message;

/// A group partition: for ticks `from..=to` the cluster is split into
/// `groups` contiguous id blocks and messages crossing blocks are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First partitioned tick.
    pub from: u64,
    /// Last partitioned tick (inclusive); healing starts at `to + 1`.
    pub to: u64,
    /// Number of contiguous id blocks (≥ 2).
    pub groups: u32,
}

impl Partition {
    /// Parses `FROM:LEN[:GROUPS]` (groups defaults to 2).
    pub fn parse(spec: &str) -> Result<Partition, String> {
        let mut parts = spec.split(':');
        let int = |what: &str, s: Option<&str>| -> Result<u64, String> {
            s.ok_or_else(|| format!("partition {spec:?} is missing {what}"))?
                .parse()
                .map_err(|_| format!("partition {what}: bad integer in {spec:?}"))
        };
        let from = int("FROM", parts.next())?;
        let len = int("LEN", parts.next())?;
        let groups = match parts.next() {
            None => 2,
            Some(g) => g
                .parse()
                .map_err(|_| format!("partition GROUPS: bad integer in {spec:?}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("partition {spec:?} is not FROM:LEN[:GROUPS]"));
        }
        if len == 0 {
            return Err(format!("partition {spec:?} has zero length"));
        }
        if groups < 2 {
            return Err(format!("partition needs >= 2 groups, got {groups}"));
        }
        Ok(Partition {
            from,
            to: from + len - 1,
            groups,
        })
    }

    /// Which block node `v` falls into for a cluster of `n` nodes.
    pub fn group_of(&self, v: NodeId, n: usize) -> u32 {
        if n == 0 {
            return 0;
        }
        ((v as u64 * self.groups as u64) / n as u64) as u32
    }
}

/// Network-level fault and delay configuration (the axes [`FaultPlan`]
/// does not carry).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetConfig {
    /// Per-message extra delay is hash-uniform in `0..=delay_jitter`
    /// ticks on top of the 1-tick link latency.
    pub delay_jitter: u64,
    /// I.i.d. per-message drop probability.
    pub loss: f64,
    /// Group partitions (may overlap; a message crossing any active
    /// partition drops).
    pub partitions: Vec<Partition>,
}

/// Message-drop counters by cause, plus totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages accepted from senders.
    pub sent: u64,
    /// Messages handed to their receiver.
    pub delivered: u64,
    /// Dropped: receiver (or sender at send time) crashed/asleep.
    pub dropped_down: u64,
    /// Dropped: sender or receiver jammed at delivery.
    pub dropped_jam: u64,
    /// Dropped: an active partition separated the endpoints.
    pub dropped_partition: u64,
    /// Dropped: receiver's burst channel was bad.
    pub dropped_burst: u64,
    /// Dropped: iid loss coin.
    pub dropped_loss: u64,
}

impl NetStats {
    /// Total drops across all causes.
    pub fn dropped(&self) -> u64 {
        self.dropped_down
            + self.dropped_jam
            + self.dropped_partition
            + self.dropped_burst
            + self.dropped_loss
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    msg: Message,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// SplitMix64 finalizer — the per-message hash behind loss and jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The deterministic in-process network.
#[derive(Debug)]
pub struct SimNet {
    n: usize,
    cfg: NetConfig,
    plan: FaultPlan,
    queue: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    hash_seed: u64,
    /// Per-receiver Gilbert–Elliott channel state (true = bad), stepped
    /// once per tick in ascending id order from its own RNG stream.
    burst_bad: Vec<bool>,
    burst_rng: Xoshiro256pp,
    /// Statistics by drop cause.
    pub stats: NetStats,
}

impl SimNet {
    /// A network for `n` nodes.  `plan` supplies crash/sleep/jam/burst;
    /// `cfg` supplies partitions, loss, and jitter.  All randomness
    /// derives from `master` via labeled streams, so two nets built from
    /// the same arguments behave identically.
    pub fn new(n: usize, plan: FaultPlan, cfg: NetConfig, master: u64) -> SimNet {
        assert_eq!(plan.n(), n, "fault plan size mismatch");
        SimNet {
            n,
            cfg,
            plan,
            queue: BinaryHeap::new(),
            seq: 0,
            hash_seed: labeled_seed(master, "net/msg"),
            burst_bad: vec![false; n],
            burst_rng: Xoshiro256pp::new(labeled_seed(master, "net/burst")),
            stats: NetStats::default(),
        }
    }

    /// The fault plan driving node availability.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether node `v` is up (awake and not crashed) at `tick`.
    pub fn node_up(&self, v: NodeId, tick: u64) -> bool {
        self.plan.node_up(v, clamp_round(tick))
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Steps the per-receiver burst channels for `tick`.  Call exactly
    /// once per tick, before [`SimNet::deliver_due`]; draws are in
    /// ascending node-id order (and nothing is drawn without a burst
    /// plan), mirroring `FaultSession::begin_round`.
    pub fn begin_tick(&mut self, _tick: u64) {
        if let Some(b) = self.plan.burst() {
            for bad in self.burst_bad.iter_mut() {
                if *bad {
                    if self.burst_rng.coin(b.p_good) {
                        *bad = false;
                    }
                } else if self.burst_rng.coin(b.p_bad) {
                    *bad = true;
                }
            }
        }
    }

    /// Accepts a message from its sender at `now`.  A down or jammed
    /// sender transmits nothing; the iid loss coin and the delay jitter
    /// are decided here from the per-message hash.
    pub fn send(&mut self, now: u64, msg: Message) {
        self.stats.sent += 1;
        let round = clamp_round(now);
        if !self.internal_up(msg.src, now) {
            self.stats.dropped_down += 1;
            return;
        }
        if self.is_node(msg.src) && self.plan.jammed(msg.src, round) {
            self.stats.dropped_jam += 1;
            return;
        }
        let h = mix(self.hash_seed
            ^ mix((msg.src as u64) << 32 | msg.dest as u64)
            ^ self.seq.wrapping_mul(0x2545f4914f6cdd1d));
        if self.cfg.loss > 0.0 && ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.cfg.loss {
            self.seq += 1;
            self.stats.dropped_loss += 1;
            return;
        }
        let jitter = if self.cfg.delay_jitter == 0 {
            0
        } else {
            mix(h) % (self.cfg.delay_jitter + 1)
        };
        self.queue.push(Reverse(InFlight {
            deliver_at: now + 1 + jitter,
            seq: self.seq,
            msg,
        }));
        self.seq += 1;
    }

    /// Pops every message due at `now` (in `(deliver_at, seq)` order),
    /// applying delivery-time drops: down receiver, jammed endpoint,
    /// active partition, bad burst channel.
    pub fn deliver_due(&mut self, now: u64) -> Vec<Message> {
        let round = clamp_round(now);
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let InFlight { msg, .. } = self.queue.pop().expect("peeked").0;
            if !self.internal_up(msg.dest, now) {
                self.stats.dropped_down += 1;
                continue;
            }
            let jammed = |v: NodeId| self.is_node(v) && self.plan.jammed(v, round);
            if jammed(msg.src) || jammed(msg.dest) {
                self.stats.dropped_jam += 1;
                continue;
            }
            if self.partitioned(msg.src, msg.dest, now) {
                self.stats.dropped_partition += 1;
                continue;
            }
            if self.is_node(msg.dest) && self.burst_bad[msg.dest as usize] {
                self.stats.dropped_burst += 1;
                continue;
            }
            self.stats.delivered += 1;
            out.push(msg);
        }
        out
    }

    /// Whether an active partition separates `a` and `b` at `tick`.
    /// Client messages (either endpoint outside the cluster) never
    /// partition.
    pub fn partitioned(&self, a: NodeId, b: NodeId, tick: u64) -> bool {
        if !self.is_node(a) || !self.is_node(b) {
            return false;
        }
        self.cfg.partitions.iter().any(|p| {
            p.from <= tick && tick <= p.to && p.group_of(a, self.n) != p.group_of(b, self.n)
        })
    }

    /// The first tick at which every partition has healed (0 when there
    /// are none).
    pub fn heal_tick(&self) -> u64 {
        self.cfg
            .partitions
            .iter()
            .map(|p| p.to + 1)
            .max()
            .unwrap_or(0)
    }

    fn is_node(&self, v: NodeId) -> bool {
        (v as usize) < self.n
    }

    /// Client endpoints are always up; cluster endpoints follow the plan.
    fn internal_up(&self, v: NodeId, tick: u64) -> bool {
        !self.is_node(v) || self.node_up(v, tick)
    }
}

/// Tick → 1-based fault-plan round (saturating).
fn clamp_round(tick: u64) -> u32 {
    u32::try_from(tick).unwrap_or(u32::MAX).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Body;

    fn gossip(src: NodeId, dest: NodeId) -> Message {
        Message {
            src,
            dest,
            body: Body::Gossip { values: vec![1] },
        }
    }

    fn quiet_net(n: usize) -> SimNet {
        SimNet::new(n, FaultPlan::new(n), NetConfig::default(), 7)
    }

    #[test]
    fn delivery_order_is_time_then_seq() {
        let mut net = quiet_net(4);
        net.send(1, gossip(0, 1));
        net.send(1, gossip(0, 2));
        net.send(1, gossip(1, 3));
        assert!(net.deliver_due(1).is_empty(), "1-tick link latency");
        let due = net.deliver_due(2);
        assert_eq!(
            due.iter().map(|m| m.dest).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "send order preserved at equal delivery times"
        );
        assert_eq!(net.stats.delivered, 3);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn crashed_and_sleeping_nodes_drop_both_directions() {
        let mut plan = FaultPlan::new(3);
        plan.crash(1, 5).sleep(2, 4);
        let mut net = SimNet::new(3, plan, NetConfig::default(), 7);
        // Sleeping receiver: dropped at delivery.
        net.send(1, gossip(0, 2));
        assert!(net.deliver_due(2).is_empty());
        assert_eq!(net.stats.dropped_down, 1);
        // Awake after wake tick.
        net.send(4, gossip(0, 2));
        assert_eq!(net.deliver_due(5).len(), 1);
        // Crashed sender: dropped at send.
        net.send(5, gossip(1, 0));
        assert_eq!(net.stats.dropped_down, 2);
        // Crash mid-flight: sent while up, delivered after the crash.
        net.send(4, gossip(0, 1));
        assert!(net.deliver_due(6).is_empty());
        assert_eq!(net.stats.dropped_down, 3);
    }

    #[test]
    fn jam_windows_cut_incident_links() {
        let mut plan = FaultPlan::new(3);
        plan.jam(1, 3, 4);
        let mut net = SimNet::new(3, plan, NetConfig::default(), 7);
        net.send(2, gossip(0, 1)); // delivered at 3, inside the window
        assert!(net.deliver_due(3).is_empty());
        assert_eq!(net.stats.dropped_jam, 1);
        net.send(3, gossip(1, 0)); // jammed sender
        assert_eq!(net.stats.dropped_jam, 2);
        net.send(4, gossip(0, 2)); // 0–2 link unaffected
        assert_eq!(net.deliver_due(5).len(), 1);
        net.send(5, gossip(0, 1)); // window over
        assert_eq!(net.deliver_due(6).len(), 1);
    }

    #[test]
    fn partitions_cut_cross_group_links_then_heal() {
        let cfg = NetConfig {
            partitions: vec![Partition {
                from: 10,
                to: 19,
                groups: 2,
            }],
            ..NetConfig::default()
        };
        let mut net = SimNet::new(4, FaultPlan::new(4), cfg, 7);
        assert_eq!(net.heal_tick(), 20);
        // Nodes 0,1 vs 2,3.
        net.send(10, gossip(0, 3));
        assert!(net.deliver_due(11).is_empty());
        assert_eq!(net.stats.dropped_partition, 1);
        net.send(10, gossip(0, 1)); // same group: flows
        assert_eq!(net.deliver_due(11).len(), 1);
        net.send(20, gossip(0, 3)); // healed
        assert_eq!(net.deliver_due(21).len(), 1);
        // Client traffic is never partitioned.
        assert!(!net.partitioned(crate::msg::CLIENT, 3, 12));
    }

    #[test]
    fn partition_parse_grammar() {
        assert_eq!(
            Partition::parse("10:5").unwrap(),
            Partition {
                from: 10,
                to: 14,
                groups: 2
            }
        );
        assert_eq!(Partition::parse("1:100:4").unwrap().groups, 4);
        assert!(Partition::parse("10").is_err());
        assert!(Partition::parse("10:0").is_err());
        assert!(Partition::parse("10:5:1").is_err());
        assert!(Partition::parse("10:5:2:9").is_err());
        assert!(Partition::parse("x:5").is_err());
    }

    #[test]
    fn iid_loss_is_seed_deterministic() {
        let run = |master: u64| -> u64 {
            let cfg = NetConfig {
                loss: 0.5,
                ..NetConfig::default()
            };
            let mut net = SimNet::new(2, FaultPlan::new(2), cfg, master);
            for _ in 0..200 {
                net.send(1, gossip(0, 1));
            }
            net.stats.dropped_loss
        };
        let a = run(11);
        assert!(a > 50 && a < 150, "loss rate wildly off: {a}/200");
        assert_eq!(a, run(11), "same master, same drops");
        assert_ne!(run(11), run(12), "different masters diverge");
    }

    #[test]
    fn burst_channel_drops_at_bad_receivers() {
        let mut plan = FaultPlan::new(2);
        plan.set_burst(1.0, 0.0); // all channels bad from tick 1, forever
        let mut net = SimNet::new(2, plan, NetConfig::default(), 7);
        net.begin_tick(1);
        net.send(1, gossip(0, 1));
        net.begin_tick(2);
        assert!(net.deliver_due(2).is_empty());
        assert_eq!(net.stats.dropped_burst, 1);
    }

    #[test]
    fn jitter_spreads_deliveries_deterministically() {
        let cfg = NetConfig {
            delay_jitter: 3,
            ..NetConfig::default()
        };
        let collect = |master: u64| -> Vec<usize> {
            let mut net = SimNet::new(2, FaultPlan::new(2), cfg.clone(), master);
            for _ in 0..32 {
                net.send(1, gossip(0, 1));
            }
            (2..=5).map(|t| net.deliver_due(t).len()).collect()
        };
        let a = collect(5);
        assert_eq!(a.iter().sum::<usize>(), 32, "everything arrives");
        assert!(
            a.iter().filter(|&&c| c > 0).count() > 1,
            "spread out: {a:?}"
        );
        assert_eq!(a, collect(5));
    }
}
