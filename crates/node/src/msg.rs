//! Maelstrom-style JSON-lines messages.
//!
//! Every message is an envelope `{"src": ..., "dest": ..., "body": {...}}`
//! whose body carries a `type` tag plus typed fields — the wire format the
//! Maelstrom/Gossip-Glomers broadcast workloads speak, restricted to the
//! node ids being integers (the in-process cluster addresses nodes by
//! [`NodeId`]; the workload driver is [`CLIENT`]).
//!
//! In-process, the cluster exchanges the typed [`Message`] values directly
//! — rendering ~10⁷ JSON strings per workload would dominate the run — but
//! every message round-trips through [`Message::to_json`] /
//! [`Message::from_json`] byte-for-byte, and the `radio-node node` stdio
//! mode speaks exactly this rendering, one message per line.

use radio_graph::NodeId;
use radio_sim::Json;

/// The workload driver's address (client messages: `broadcast`, `read`,
/// `topology`, `init`).
pub const CLIENT: NodeId = NodeId::MAX;

/// One envelope on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender node id ([`CLIENT`] for the driver).
    pub src: NodeId,
    /// Receiver node id.
    pub dest: NodeId,
    /// The typed payload.
    pub body: Body,
}

/// Typed message bodies (the `type` tag on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Hands the node its identity and the cluster size.
    Init {
        /// Client-chosen message id.
        msg_id: u64,
        /// The node's own id.
        node_id: NodeId,
        /// Cluster size.
        n: u32,
    },
    /// Acknowledges `init`.
    InitOk {
        /// The `msg_id` being acknowledged.
        in_reply_to: u64,
    },
    /// Hands the node its gossip peers.
    Topology {
        /// Client-chosen message id.
        msg_id: u64,
        /// Neighbor ids, ascending.
        neighbors: Vec<NodeId>,
    },
    /// Acknowledges `topology`.
    TopologyOk {
        /// The `msg_id` being acknowledged.
        in_reply_to: u64,
    },
    /// A client op: remember `value` and spread it to the cluster.
    Broadcast {
        /// Client-chosen message id.
        msg_id: u64,
        /// The datum to spread.
        value: u64,
    },
    /// Acknowledges `broadcast`.
    BroadcastOk {
        /// The `msg_id` being acknowledged.
        in_reply_to: u64,
    },
    /// A client op: return every value the node has seen.
    Read {
        /// Client-chosen message id.
        msg_id: u64,
    },
    /// Answers `read`.
    ReadOk {
        /// The `msg_id` being answered.
        in_reply_to: u64,
        /// Every value the node holds, ascending.
        values: Vec<u64>,
    },
    /// Inter-node gossip: "here are values you may be missing".
    Gossip {
        /// The offered values, ascending.
        values: Vec<u64>,
    },
    /// Confirms receipt of a `gossip` (the ack layer's confirmation).
    GossipAck {
        /// The values being confirmed, ascending.
        values: Vec<u64>,
    },
    /// Advances the node's simulated clock (stdio mode only; the
    /// in-process event loop owns time directly).
    Tick {
        /// The new tick.
        tick: u64,
    },
}

impl Body {
    /// The wire `type` tag.
    pub fn type_str(&self) -> &'static str {
        match self {
            Body::Init { .. } => "init",
            Body::InitOk { .. } => "init_ok",
            Body::Topology { .. } => "topology",
            Body::TopologyOk { .. } => "topology_ok",
            Body::Broadcast { .. } => "broadcast",
            Body::BroadcastOk { .. } => "broadcast_ok",
            Body::Read { .. } => "read",
            Body::ReadOk { .. } => "read_ok",
            Body::Gossip { .. } => "gossip",
            Body::GossipAck { .. } => "gossip_ack",
            Body::Tick { .. } => "tick",
        }
    }
}

fn values_json(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::from(v as i64)).collect())
}

fn values_from(json: &Json, key: &str) -> Result<Vec<u64>, String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing {key} array"))?
        .iter()
        .map(|v| {
            v.as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("bad value in {key}"))
        })
        .collect()
}

impl Message {
    /// Renders the Maelstrom envelope (`src`/`dest`/`body`).
    pub fn to_json(&self) -> Json {
        let tag = ("type", Json::from(self.body.type_str()));
        let body = match &self.body {
            Body::Init { msg_id, node_id, n } => Json::object([
                tag,
                ("msg_id", Json::from(*msg_id as i64)),
                ("node_id", Json::from(*node_id)),
                ("n", Json::from(*n)),
            ]),
            Body::InitOk { in_reply_to }
            | Body::TopologyOk { in_reply_to }
            | Body::BroadcastOk { in_reply_to } => {
                Json::object([tag, ("in_reply_to", Json::from(*in_reply_to as i64))])
            }
            Body::Topology { msg_id, neighbors } => Json::object([
                tag,
                ("msg_id", Json::from(*msg_id as i64)),
                (
                    "neighbors",
                    Json::Arr(neighbors.iter().map(|&v| Json::from(v)).collect()),
                ),
            ]),
            Body::Broadcast { msg_id, value } => Json::object([
                tag,
                ("msg_id", Json::from(*msg_id as i64)),
                ("value", Json::from(*value as i64)),
            ]),
            Body::Read { msg_id } => Json::object([tag, ("msg_id", Json::from(*msg_id as i64))]),
            Body::ReadOk {
                in_reply_to,
                values,
            } => Json::object([
                tag,
                ("in_reply_to", Json::from(*in_reply_to as i64)),
                ("values", values_json(values)),
            ]),
            Body::Gossip { values } | Body::GossipAck { values } => {
                Json::object([tag, ("values", values_json(values))])
            }
            Body::Tick { tick } => Json::object([tag, ("tick", Json::from(*tick as i64))]),
        };
        Json::object([
            ("src", Json::from(self.src)),
            ("dest", Json::from(self.dest)),
            ("body", body),
        ])
    }

    /// Parses an envelope rendered by [`Message::to_json`].
    pub fn from_json(json: &Json) -> Result<Message, String> {
        let node = |key: &str| -> Result<NodeId, String> {
            json.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid {key}"))
        };
        let body = json.get("body").ok_or("missing body")?;
        let u64_field = |key: &str| -> Result<u64, String> {
            body.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid body.{key}"))
        };
        let kind = body
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing body.type")?;
        let parsed = match kind {
            "init" => Body::Init {
                msg_id: u64_field("msg_id")?,
                node_id: body
                    .get("node_id")
                    .and_then(Json::as_i64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or("missing or invalid body.node_id")?,
                n: body
                    .get("n")
                    .and_then(Json::as_i64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or("missing or invalid body.n")?,
            },
            "init_ok" => Body::InitOk {
                in_reply_to: u64_field("in_reply_to")?,
            },
            "topology" => Body::Topology {
                msg_id: u64_field("msg_id")?,
                neighbors: body
                    .get("neighbors")
                    .and_then(Json::as_arr)
                    .ok_or("missing body.neighbors")?
                    .iter()
                    .map(|v| {
                        v.as_i64()
                            .and_then(|i| u32::try_from(i).ok())
                            .ok_or_else(|| "bad neighbor id".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "topology_ok" => Body::TopologyOk {
                in_reply_to: u64_field("in_reply_to")?,
            },
            "broadcast" => Body::Broadcast {
                msg_id: u64_field("msg_id")?,
                value: u64_field("value")?,
            },
            "broadcast_ok" => Body::BroadcastOk {
                in_reply_to: u64_field("in_reply_to")?,
            },
            "read" => Body::Read {
                msg_id: u64_field("msg_id")?,
            },
            "read_ok" => Body::ReadOk {
                in_reply_to: u64_field("in_reply_to")?,
                values: values_from(body, "values")?,
            },
            "gossip" => Body::Gossip {
                values: values_from(body, "values")?,
            },
            "gossip_ack" => Body::GossipAck {
                values: values_from(body, "values")?,
            },
            "tick" => Body::Tick {
                tick: u64_field("tick")?,
            },
            other => return Err(format!("unknown message type {other:?}")),
        };
        Ok(Message {
            src: node("src")?,
            dest: node("dest")?,
            body: parsed,
        })
    }

    /// One compact JSON line (the stdio wire format, no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().render()
    }

    /// Parses one JSON line.
    pub fn from_line(line: &str) -> Result<Message, String> {
        Message::from_json(&Json::parse(line).map_err(|e| format!("bad JSON line: {e}"))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message {
                src: CLIENT,
                dest: 0,
                body: Body::Init {
                    msg_id: 1,
                    node_id: 0,
                    n: 64,
                },
            },
            Message {
                src: 0,
                dest: CLIENT,
                body: Body::InitOk { in_reply_to: 1 },
            },
            Message {
                src: CLIENT,
                dest: 3,
                body: Body::Topology {
                    msg_id: 2,
                    neighbors: vec![1, 2, 9],
                },
            },
            Message {
                src: 3,
                dest: CLIENT,
                body: Body::TopologyOk { in_reply_to: 2 },
            },
            Message {
                src: CLIENT,
                dest: 5,
                body: Body::Broadcast {
                    msg_id: 3,
                    value: 7001,
                },
            },
            Message {
                src: 5,
                dest: CLIENT,
                body: Body::BroadcastOk { in_reply_to: 3 },
            },
            Message {
                src: CLIENT,
                dest: 5,
                body: Body::Read { msg_id: 4 },
            },
            Message {
                src: 5,
                dest: CLIENT,
                body: Body::ReadOk {
                    in_reply_to: 4,
                    values: vec![7001, 7002],
                },
            },
            Message {
                src: 5,
                dest: 9,
                body: Body::Gossip { values: vec![7001] },
            },
            Message {
                src: 9,
                dest: 5,
                body: Body::GossipAck { values: vec![7001] },
            },
            Message {
                src: CLIENT,
                dest: 5,
                body: Body::Tick { tick: 42 },
            },
        ]
    }

    #[test]
    fn every_body_round_trips_through_json_lines() {
        for msg in samples() {
            let line = msg.to_line();
            let back = Message::from_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, msg, "{line}");
            // Rendering is stable (byte-identical re-render).
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn wire_format_is_maelstrom_shaped() {
        let line = samples()[4].to_line();
        assert!(line.starts_with("{\"src\":"), "{line}");
        assert!(line.contains("\"body\":{\"type\":\"broadcast\""), "{line}");
        assert!(line.contains("\"value\":7001"), "{line}");
    }

    #[test]
    fn garbage_lines_are_rejected() {
        assert!(Message::from_line("not json").is_err());
        assert!(Message::from_line("{\"src\":1}").is_err());
        assert!(Message::from_line("{\"src\":1,\"dest\":2,\"body\":{\"type\":\"warp\"}}").is_err());
    }
}
