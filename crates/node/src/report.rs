//! The workload's result artifact: a versioned, JSON-stable [`NodeReport`].
//!
//! Everything except `wall_ns` is a pure function of the workload
//! configuration and master seed; [`NodeReport::strip_timing`] zeroes the
//! one wall-clock field so that two same-seed runs can be compared
//! byte-for-byte (the determinism contract `scripts/check.sh` enforces
//! across `RADIO_THREADS` settings).

use radio_sim::Json;

/// Schema version for [`NodeReport`] (v1: initial).
pub const NODE_REPORT_SCHEMA_VERSION: u32 = 1;

/// Aggregated partition-recovery metrics from `radio-node workload`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Schema version ([`NODE_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Cluster size per trial.
    pub n: usize,
    /// Client broadcast ops per trial.
    pub ops: usize,
    /// Tick horizon per trial.
    pub ticks: u64,
    /// Trials aggregated.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Worst-case (minimum over trials) final coverage: the fraction of
    /// live, source-reachable nodes holding every broadcast value.
    pub coverage: f64,
    /// Trials that reached coverage 1.0 inside the horizon.
    pub converged_trials: usize,
    /// Protocol messages (gossip + ack) per client op, mean over trials.
    pub msgs_per_op: f64,
    /// Messages accepted by the network, summed over trials.
    pub msgs_sent: u64,
    /// Messages delivered, summed over trials.
    pub msgs_delivered: u64,
    /// Messages dropped (all causes), summed over trials.
    pub msgs_dropped: u64,
    /// Median value-delivery latency in ticks (op injection → a node
    /// first learns the value), nearest-rank over all samples.
    pub delivery_p50: u64,
    /// 99th-percentile delivery latency in ticks, nearest-rank.
    pub delivery_p99: u64,
    /// Longest stale-read window in ticks: for the slowest value, the
    /// span from injection until the last node learned it.
    pub stale_window_max: u64,
    /// Ticks from the last partition healing to full coverage, worst
    /// trial (0 without partitions or when coverage precedes the heal).
    pub post_heal_ticks: u64,
    /// Retry gossip messages, summed over trials.
    pub retries: u64,
    /// Wall-clock time of the whole workload, nanoseconds.  The only
    /// non-deterministic field; see [`NodeReport::strip_timing`].
    pub wall_ns: u64,
}

impl NodeReport {
    /// Zeroes the wall-clock field, leaving only seed-determined data.
    pub fn strip_timing(mut self) -> NodeReport {
        self.wall_ns = 0;
        self
    }

    /// Renders the report as a stable JSON object (keys in declaration
    /// order; re-rendering a parsed report is byte-identical).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema_version", Json::from(self.schema_version)),
            ("n", Json::from(self.n)),
            ("ops", Json::from(self.ops)),
            ("ticks", Json::from(self.ticks)),
            ("trials", Json::from(self.trials)),
            ("seed", Json::from(self.seed)),
            ("coverage", Json::from(self.coverage)),
            ("converged_trials", Json::from(self.converged_trials)),
            ("msgs_per_op", Json::from(self.msgs_per_op)),
            ("msgs_sent", Json::from(self.msgs_sent)),
            ("msgs_delivered", Json::from(self.msgs_delivered)),
            ("msgs_dropped", Json::from(self.msgs_dropped)),
            ("delivery_p50", Json::from(self.delivery_p50)),
            ("delivery_p99", Json::from(self.delivery_p99)),
            ("stale_window_max", Json::from(self.stale_window_max)),
            ("post_heal_ticks", Json::from(self.post_heal_ticks)),
            ("retries", Json::from(self.retries)),
            ("wall_ns", Json::from(self.wall_ns)),
        ])
    }

    /// Parses a report rendered by [`NodeReport::to_json`].
    pub fn from_json(json: &Json) -> Result<NodeReport, String> {
        let int = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid {key}"))
        };
        let float = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or invalid {key}"))
        };
        let version = int("schema_version")? as u32;
        if version == 0 || version > NODE_REPORT_SCHEMA_VERSION {
            return Err(format!("unsupported node-report schema v{version}"));
        }
        Ok(NodeReport {
            schema_version: version,
            n: int("n")? as usize,
            ops: int("ops")? as usize,
            ticks: int("ticks")?,
            trials: int("trials")? as usize,
            seed: int("seed")?,
            coverage: float("coverage")?,
            converged_trials: int("converged_trials")? as usize,
            msgs_per_op: float("msgs_per_op")?,
            msgs_sent: int("msgs_sent")?,
            msgs_delivered: int("msgs_delivered")?,
            msgs_dropped: int("msgs_dropped")?,
            delivery_p50: int("delivery_p50")?,
            delivery_p99: int("delivery_p99")?,
            stale_window_max: int("stale_window_max")?,
            post_heal_ticks: int("post_heal_ticks")?,
            retries: int("retries")?,
            wall_ns: int("wall_ns")?,
        })
    }
}

/// Nearest-rank percentile (`q` in 0..=100) of an ascending-sorted slice;
/// 0 when empty.
pub fn percentile(sorted: &[u64], q: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * q as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeReport {
        NodeReport {
            schema_version: NODE_REPORT_SCHEMA_VERSION,
            n: 64,
            ops: 16,
            ticks: 400,
            trials: 2,
            seed: 42,
            coverage: 1.0,
            converged_trials: 2,
            msgs_per_op: 23.5,
            msgs_sent: 900,
            msgs_delivered: 850,
            msgs_dropped: 50,
            delivery_p50: 9,
            delivery_p99: 31,
            stale_window_max: 44,
            post_heal_ticks: 12,
            retries: 77,
            wall_ns: 123_456,
        }
    }

    #[test]
    fn report_round_trips_byte_stably() {
        let report = sample();
        let line = report.to_json().render();
        let back = NodeReport::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().render(), line);
    }

    #[test]
    fn strip_timing_removes_the_only_unstable_field() {
        let a = sample().strip_timing();
        let mut b = sample();
        b.wall_ns = 999;
        assert_eq!(a, b.strip_timing());
        assert_eq!(a.wall_ns, 0);
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::from(NODE_REPORT_SCHEMA_VERSION + 1);
        }
        assert!(NodeReport::from_json(&json).is_err());
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 99), 0);
    }
}
