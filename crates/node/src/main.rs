//! `radio-node` — deterministic message-passing broadcast service.
//!
//! See [`radio_node::cli`] for the subcommands; `radio-cli node ...`
//! forwards here.

fn main() {
    radio_node::cli::cli_main(std::env::args().skip(1).collect());
}
