//! Integration-test anchor crate; see `/tests`.
