#!/usr/bin/env bash
# Compare a fresh benchmark run against the committed BENCH_sim.json.
#
# Usage: scripts/bench_diff.sh [NEW_REPORT.json]
#   NEW_REPORT.json  an already-generated bench report to compare; when
#                    omitted, the summary experiment is run (release,
#                    committed seed) into a temporary file first.
#
# Prints, per bench label, mean_ns for baseline and candidate, the raw
# delta in ns, and the relative delta.  Negative deltas are speedups.
# Labels present on only one side are never dropped: they are listed with
# a `new` / `gone` marker.  The baseline is the committed (HEAD)
# BENCH_sim.json, so a dirty working-tree report never skews it.
#
# Points carrying an elems_per_sec throughput field get a second pass:
# any point more than 20% below the committed baseline is flagged with a
# warning.  Warn-only by design — shared machines are noisy and a hard
# failure would train people to ignore the gate — but every offender is
# listed so a real kernel regression is visible at a glance.

set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(mktemp)
new="${1-}"
cleanup() { rm -f "$baseline" "${tmp_new-}"; }
trap cleanup EXIT

git show HEAD:BENCH_sim.json > "$baseline"

if [ -z "$new" ]; then
  tmp_new=$(mktemp)
  new="$tmp_new"
  echo "running the summary experiment (release, seed 20060501) ..." >&2
  cargo run --release --offline -q -p radio-bench -- \
    run summary --seed 20060501 --json "$new" > /dev/null
fi

# The reports are rendered by radio_sim::json (2-space pretty print, one
# "key": value per line), so label/mean_ns pairs can be read line-by-line.
# Each label pairs only with the FIRST mean_ns that follows it: points may
# carry extra fields or nested objects (coverage, faults, resamples, ...),
# and points without any mean_ns are simply skipped.
extract() {
  awk '
    /"label":/   { gsub(/.*"label": "|",?$/, ""); label = $0; paired = 0 }
    /"mean_ns":/ {
      if (!paired) { gsub(/.*"mean_ns": |,?$/, ""); print label "\t" $0; paired = 1 }
    }
  ' "$1"
}

extract "$baseline" > "$baseline.tsv"
extract "$new" > "$new.tsv"

awk -F'\t' '
  NR == FNR { base[$1] = $2; next }
  {
    cand[$1] = $2
    if ($1 in base) {
      delta = $2 - base[$1]
      pct = (base[$1] > 0) ? delta / base[$1] * 100 : 0
      printf "%-45s %14.1f %14.1f %+14.1f %+9.1f%%\n", $1, base[$1], $2, delta, pct
    } else {
      printf "%-45s %14s %14.1f %14s %10s\n", $1, "-", $2, "-", "new"
    }
  }
  END {
    for (l in base) if (!(l in cand))
      printf "%-45s %14.1f %14s %14s %10s\n", l, base[l], "-", "-", "gone"
  }
' "$baseline.tsv" "$new.tsv" | {
  printf "%-45s %14s %14s %14s %10s\n" "label" "base mean_ns" "new mean_ns" "delta_ns" "delta"
  cat
}

# Second pass: throughput points.  Same label/value pairing rule as
# mean_ns, applied to elems_per_sec (higher is better).
extract_tput() {
  awk '
    /"label":/         { gsub(/.*"label": "|",?$/, ""); label = $0; paired = 0 }
    /"elems_per_sec":/ {
      if (!paired) { gsub(/.*"elems_per_sec": |,?$/, ""); print label "\t" $0; paired = 1 }
    }
  ' "$1"
}

extract_tput "$baseline" > "$baseline.tput.tsv"
extract_tput "$new" > "$new.tput.tsv"

awk -F'\t' '
  NR == FNR { base[$1] = $2; next }
  {
    if ($1 in base && base[$1] > 0 && $2 < base[$1] * 0.8) {
      pct = (base[$1] - $2) / base[$1] * 100
      printf "warning: %-45s throughput down %.1f%% (%.4g -> %.4g elems/s)\n", $1, pct, base[$1], $2
      regressed++
    }
  }
  END {
    if (regressed)
      printf "warning: %d throughput point(s) regressed more than 20%% vs the committed baseline\n", regressed
  }
' "$baseline.tput.tsv" "$new.tput.tsv" >&2

# Third pass: the batched-implicit scale points
# (provider/implicit_eg_batch<LANES>_n<N>) carry trials_per_s — completed
# Monte-Carlo trials per wall-second on the lane-plane sweep engine
# (higher is better).  Same warn-only 20% rule as elems_per_sec.  The
# pattern is anchored on the exact "trials_per_s" key so the companion
# trials_per_s_vs_scalar ratio field is not double-counted.
extract_tps() {
  awk '
    /"label":/        { gsub(/.*"label": "|",?$/, ""); label = $0; paired = 0 }
    /"trials_per_s":/ {
      if (!paired) { gsub(/.*"trials_per_s": |,?$/, ""); print label "\t" $0; paired = 1 }
    }
  ' "$1"
}

extract_tps "$baseline" > "$baseline.tps.tsv"
extract_tps "$new" > "$new.tps.tsv"

awk -F'\t' '
  NR == FNR { base[$1] = $2; next }
  {
    if ($1 in base && base[$1] > 0 && $2 < base[$1] * 0.8) {
      pct = (base[$1] - $2) / base[$1] * 100
      printf "warning: %-45s batched sweep down %.1f%% (%.4g -> %.4g trials/s)\n", $1, pct, base[$1], $2
      regressed++
    }
  }
  END {
    if (regressed)
      printf "warning: %d batched-implicit point(s) regressed more than 20%% vs the committed baseline\n", regressed
  }
' "$baseline.tps.tsv" "$new.tps.tsv" >&2

# Fourth pass: the message-passing service points (node/...) carry
# msgs_per_op — protocol messages per client broadcast op (LOWER is
# better, unlike the throughput passes above).  Warn when the candidate
# spends more than 20% extra messages per op vs the committed baseline.
extract_mpo() {
  awk '
    /"label":/       { gsub(/.*"label": "|",?$/, ""); label = $0; paired = 0 }
    /"msgs_per_op":/ {
      if (!paired) { gsub(/.*"msgs_per_op": |,?$/, ""); print label "\t" $0; paired = 1 }
    }
  ' "$1"
}

extract_mpo "$baseline" > "$baseline.mpo.tsv"
extract_mpo "$new" > "$new.mpo.tsv"

awk -F'\t' '
  NR == FNR { base[$1] = $2; next }
  {
    if ($1 in base && base[$1] > 0 && $2 > base[$1] * 1.2) {
      pct = ($2 - base[$1]) / base[$1] * 100
      printf "warning: %-45s message economy up %.1f%% (%.4g -> %.4g msgs/op)\n", $1, pct, base[$1], $2
      regressed++
    }
  }
  END {
    if (regressed)
      printf "warning: %d node-service point(s) spend more than 20%% extra msgs/op vs the committed baseline\n", regressed
  }
' "$baseline.mpo.tsv" "$new.mpo.tsv" >&2

rm -f "$baseline.tsv" "$new.tsv" "$baseline.tput.tsv" "$new.tput.tsv" \
  "$baseline.tps.tsv" "$new.tps.tsv" "$baseline.mpo.tsv" "$new.mpo.tsv"
