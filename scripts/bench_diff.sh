#!/usr/bin/env bash
# Compare a fresh benchmark run against the committed BENCH_sim.json.
#
# Usage: scripts/bench_diff.sh [NEW_REPORT.json]
#   NEW_REPORT.json  an already-generated bench report to compare; when
#                    omitted, the summary experiment is run (release,
#                    committed seed) into a temporary file first.
#
# Prints, per bench label, mean_ns for baseline and candidate, the raw
# delta in ns, and the relative delta.  Negative deltas are speedups.
# Labels present on only one side are never dropped: they are listed with
# a `new` / `gone` marker.  The baseline is the committed (HEAD)
# BENCH_sim.json, so a dirty working-tree report never skews it.

set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(mktemp)
new="${1-}"
cleanup() { rm -f "$baseline" "${tmp_new-}"; }
trap cleanup EXIT

git show HEAD:BENCH_sim.json > "$baseline"

if [ -z "$new" ]; then
  tmp_new=$(mktemp)
  new="$tmp_new"
  echo "running the summary experiment (release, seed 20060501) ..." >&2
  cargo run --release --offline -q -p radio-bench -- \
    run summary --seed 20060501 --json "$new" > /dev/null
fi

# The reports are rendered by radio_sim::json (2-space pretty print, one
# "key": value per line), so label/mean_ns pairs can be read line-by-line.
# Each label pairs only with the FIRST mean_ns that follows it: points may
# carry extra fields or nested objects (coverage, faults, resamples, ...),
# and points without any mean_ns are simply skipped.
extract() {
  awk '
    /"label":/   { gsub(/.*"label": "|",?$/, ""); label = $0; paired = 0 }
    /"mean_ns":/ {
      if (!paired) { gsub(/.*"mean_ns": |,?$/, ""); print label "\t" $0; paired = 1 }
    }
  ' "$1"
}

extract "$baseline" > "$baseline.tsv"
extract "$new" > "$new.tsv"

awk -F'\t' '
  NR == FNR { base[$1] = $2; next }
  {
    cand[$1] = $2
    if ($1 in base) {
      delta = $2 - base[$1]
      pct = (base[$1] > 0) ? delta / base[$1] * 100 : 0
      printf "%-45s %14.1f %14.1f %+14.1f %+9.1f%%\n", $1, base[$1], $2, delta, pct
    } else {
      printf "%-45s %14s %14.1f %14s %10s\n", $1, "-", $2, "-", "new"
    }
  }
  END {
    for (l in base) if (!(l in cand))
      printf "%-45s %14.1f %14s %14s %10s\n", l, base[l], "-", "-", "gone"
  }
' "$baseline.tsv" "$new.tsv" | {
  printf "%-45s %14s %14s %14s %10s\n" "label" "base mean_ns" "new mean_ns" "delta_ns" "delta"
  cat
}

rm -f "$baseline.tsv" "$new.tsv"
