#!/usr/bin/env bash
# Pre-push gate: formatting, lints, doc build, and the full test suite.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the release build (debug tests only)
#
# Every step must pass with warnings promoted to errors; this is the same
# set of checks a reviewer runs, so run it before pushing.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

step "cargo test (debug)"
cargo test --workspace --offline -q

# The fault-model cross-kernel contract (crash/sleep/jam/burst plans replay
# bit-identically on the sparse, dense, and lane-batched kernels) is also
# pinned explicitly, debug here and release below.
step "fault-model differential suite (debug)"
cargo test --offline -q -p radio-sim fault
cargo test --offline -q -p radio-integration --test fault_differential

# The cross-backend contract: the implicit (seed-only) and sharded sweep
# backends must be bit-identical to the explicit round engine, faulted and
# lossy runs included.
step "backend differential suite (debug)"
cargo test --offline -q -p radio-sim sweep
cargo test --offline -q -p radio-integration --test backend_differential

# The exec-planner contract: RunSpec planning is a pure function of its
# inputs, and the lane planes it schedules on provider backends are
# bit-identical to scalar explicit runs on the matching child_rng streams
# regardless of the worker budget.
step "exec planner suite (debug)"
for threads in 1 8; do
  RADIO_THREADS="$threads" cargo test --offline -q -p radio-sim exec
  RADIO_THREADS="$threads" cargo test --offline -q \
    -p radio-integration --test backend_differential implicit_lane_planes
done

# The tiled-kernel contract: every lane is bit-identical to the scalar
# and batch runners, and the whole result vector is invariant under the
# intra-round worker count.  The suite pins worker counts 1/3/8
# internally; the RADIO_THREADS sweep additionally pins the env-driven
# default pool size the CLI picks up.
step "tiled kernel differential suite (debug)"
cargo test --offline -q -p radio-sim tiled
for threads in 1 8; do
  RADIO_THREADS="$threads" cargo test --offline -q \
    -p radio-integration --test kernel_differential
done

# The broadcast-service contract: a partitioned 64-node cluster must heal
# to coverage 1.0, and the stripped NodeReport must be byte-identical
# across thread budgets (the service's RADIO_THREADS-independence pin).
step "node service smoke (debug)"
cargo build --offline -q -p radio-node
node_smoke() { # $1 = binary
  "$1" workload --nodes 64 --ops 8 --ticks 600 --trials 2 --seed 11 \
    --partition 10:120 --faults crash=0.05 \
    --assert-coverage 1.0 --strip-timing --json
}
a=$(RADIO_THREADS=1 node_smoke target/debug/radio-node)
b=$(RADIO_THREADS=8 node_smoke target/debug/radio-node)
[ "$a" = "$b" ] || { echo "node smoke: report differs across RADIO_THREADS" >&2; exit 1; }

if [ "$fast" -eq 0 ]; then
  step "cargo build --release"
  cargo build --workspace --release --offline -q

  # The kernel equivalence suite (sparse == dense == reference, byte-stable
  # traces) re-runs in release mode: the dense kernel's word arithmetic and
  # the Auto dispatch must hold under optimization, not just in debug.
  step "differential kernel tests (release)"
  cargo test --release --offline -q -p radio-sim kernel
  cargo test --release --offline -q -p radio-integration --test props_cross_crate kernel

  # The lane-batched runner's bit-identity contract (every lane == the
  # scalar run on the same stream, lossy included) likewise must survive
  # optimization.
  step "batch equivalence suite (release)"
  cargo test --release --offline -q -p radio-sim batch
  cargo test --release --offline -q -p radio-integration --test batch_vs_scalar

  # The fault-model differential suite re-runs in release: the dense
  # three-plane resolution and the batch jam/burst word arithmetic must
  # stay bit-identical to the sparse reference under optimization.
  step "fault-model differential suite (release)"
  cargo test --release --offline -q -p radio-sim fault
  cargo test --release --offline -q -p radio-integration --test fault_differential

  # The cross-backend suite re-runs in release: geometric skip sampling and
  # the sharded merge must reproduce the explicit engine bit-for-bit under
  # optimization.
  step "backend differential suite (release)"
  cargo test --release --offline -q -p radio-sim sweep
  cargo test --release --offline -q -p radio-integration --test backend_differential

  # The exec-planner suite re-runs in release under both worker budgets:
  # planner purity and the lane-plane bit-identity must survive
  # optimization and be invariant under the thread budget.
  step "exec planner suite (release)"
  for threads in 1 8; do
    RADIO_THREADS="$threads" cargo test --release --offline -q -p radio-sim exec
    RADIO_THREADS="$threads" cargo test --release --offline -q \
      -p radio-integration --test backend_differential implicit_lane_planes
  done

  # The tiled kernel re-runs in release under both a serial and an
  # oversubscribed pool: the AVX-512 sweep, the compact transmitter
  # table, and the block-cursor work stealing must stay bit-identical
  # to the scalar engine under optimization.
  step "tiled kernel differential suite (release)"
  cargo test --release --offline -q -p radio-sim tiled
  for threads in 1 8; do
    RADIO_THREADS="$threads" cargo test --release --offline -q \
      -p radio-integration --test kernel_differential
  done

  # The experiment registry: the driver must list all experiments, and the
  # smoke suite runs every registered experiment at a tiny grid and checks
  # the parallel `all` path is bit-identical to serial.
  # The broadcast-service contract re-runs in release at cluster scale
  # (1024 nodes, partition + crash + loss): full coverage after heal,
  # byte-identical stripped reports across thread budgets, and the
  # debug-built report must match release bit-for-bit.
  step "node service (release, 1024 nodes)"
  node_scale() { # $1 = binary
    RADIO_THREADS="$2" "$1" workload --nodes 1024 --ops 32 --ticks 1200 --seed 42 \
      --partition 10:150 --faults crash=0.05,sleep=0.05 --loss 0.02 \
      --assert-coverage 1.0 --strip-timing --json
  }
  r1=$(node_scale target/release/radio-node 1)
  r8=$(node_scale target/release/radio-node 8)
  [ "$r1" = "$r8" ] || { echo "node scale: report differs across RADIO_THREADS" >&2; exit 1; }
  d1=$(node_scale target/debug/radio-node 1)
  [ "$r1" = "$d1" ] || { echo "node scale: debug and release reports differ" >&2; exit 1; }

  step "experiment registry (release)"
  cargo run --release --offline -q -p radio-bench -- list
  cargo test --release --offline -q -p radio-bench --test registry
fi

printf '\nall checks passed\n'
