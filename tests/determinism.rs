//! Reproducibility guarantees: everything stochastic is a pure function of
//! its seed, and parallel sweeps equal serial ones bit-for-bit.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::gnm::sample_gnm;
use radio_graph::{child_rng, derive_seed};
use radio_sim::{run_trials, run_trials_serial};

#[test]
fn graph_sampling_deterministic() {
    let a = sample_gnp(2_000, 0.01, &mut Xoshiro256pp::new(42));
    let b = sample_gnp(2_000, 0.01, &mut Xoshiro256pp::new(42));
    assert_eq!(a, b);
    let c = sample_gnm(2_000, 10_000, &mut Xoshiro256pp::new(42));
    let d = sample_gnm(2_000, 10_000, &mut Xoshiro256pp::new(42));
    assert_eq!(c, d);
}

#[test]
fn protocol_runs_deterministic() {
    let n = 1_000;
    let p = 30.0 / n as f64;
    let g = sample_gnp(n, p, &mut Xoshiro256pp::new(7));
    let run = |seed: u64| {
        let mut rng = Xoshiro256pp::new(seed);
        let mut proto = EgDistributed::new(p);
        run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), &mut rng)
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b);
    // And a different seed (almost surely) differs in its trace.
    let c = run(124);
    assert!(a.trace != c.trace || a.rounds != c.rounds || a.rounds <= 2);
}

#[test]
fn schedule_builder_deterministic() {
    let g = sample_gnp(1_500, 0.02, &mut Xoshiro256pp::new(8));
    let a = build_eg_schedule(
        &g,
        5,
        CentralizedParams::default(),
        &mut Xoshiro256pp::new(9),
    );
    let b = build_eg_schedule(
        &g,
        5,
        CentralizedParams::default(),
        &mut Xoshiro256pp::new(9),
    );
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.phases, b.phases);
    assert_eq!(a.completed, b.completed);
}

#[test]
fn parallel_sweep_equals_serial_sweep() {
    // Full pipeline inside each trial: sample graph, run protocol, return
    // the round count. Parallel and serial execution must agree.
    let job = |_i: usize, rng: &mut Xoshiro256pp| {
        let n = 500;
        let p = 25.0 / n as f64;
        let g = sample_gnp(n, p, rng);
        let mut proto = EgDistributed::new(p);
        let r = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), rng);
        (r.completed, r.rounds, r.informed)
    };
    let par = run_trials(24, 777, job);
    let ser = run_trials_serial(24, 777, job);
    assert_eq!(par, ser);
}

#[test]
fn faulty_lossy_sweeps_identical_across_threads_and_kernels() {
    use radio_sim::{
        run_protocol_faulty, BurstParams, EngineKernel, FaultConfig, FaultPlan, KernelUsed,
        TraceLevel,
    };
    let n = 500;
    let p = 22.0 / n as f64;
    let g = sample_gnp(n, p, &mut Xoshiro256pp::new(31));
    let plan = FaultPlan::generate(
        &g,
        &FaultConfig {
            crash_rate: 0.05,
            sleep_rate: 0.1,
            jammers: 2,
            burst: Some(BurstParams {
                p_bad: 0.2,
                p_good: 0.3,
            }),
            exempt: Some(0),
            ..FaultConfig::default()
        },
        99,
    );

    // One faulty + lossy sweep at a fixed kernel, fanned over the trial
    // pool.  Byte-identical results regardless of the worker-thread count.
    let sweep = |kernel: EngineKernel| {
        let job = |_i: usize, rng: &mut Xoshiro256pp| {
            let cfg = RunConfig::for_graph(n)
                .with_kernel(kernel)
                .with_loss(0.15)
                .with_trace(TraceLevel::PerRound);
            let mut proto = EgDistributed::new(p);
            run_protocol_faulty(&g, 0, &mut proto, cfg, &plan, rng)
        };
        std::env::set_var("RADIO_THREADS", "1");
        let serial = run_trials(8, 4040, job);
        std::env::set_var("RADIO_THREADS", "8");
        let threaded = run_trials(8, 4040, job);
        std::env::remove_var("RADIO_THREADS");
        assert_eq!(
            serial, threaded,
            "{kernel:?}: thread count leaked into results"
        );
        serial
    };

    let sparse = sweep(EngineKernel::Sparse);
    let dense = sweep(EngineKernel::Dense);
    let auto = sweep(EngineKernel::Auto);
    // Kernel choice is an implementation detail: everything but the
    // recorded kernel tag must agree across sparse / dense / auto.
    let normalize = |mut runs: Vec<radio_sim::RunResult>| {
        for r in &mut runs {
            r.kernel = KernelUsed::Sparse;
        }
        runs
    };
    let sparse = normalize(sparse);
    assert_eq!(sparse, normalize(dense));
    assert_eq!(sparse, normalize(auto));
}

#[test]
fn seed_derivation_is_stable_across_calls() {
    // Pin a few derived values so accidental changes to the derivation
    // function (which would silently re-randomize every experiment) fail
    // loudly.
    let a = derive_seed(20060501, 0);
    let b = derive_seed(20060501, 0);
    assert_eq!(a, b);
    let mut r1 = child_rng(1, 2);
    let mut r2 = child_rng(1, 2);
    assert_eq!(r1.next(), r2.next());
}

#[test]
fn run_results_depend_only_on_inputs_not_history() {
    // Using the same rng object twice advances its state; fresh rng objects
    // with the same seed must reset it.
    let g = sample_gnp(600, 0.05, &mut Xoshiro256pp::new(10));
    let mut shared = Xoshiro256pp::new(11);
    let mut proto = Decay::new();
    let first = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(600), &mut shared);
    let second = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(600), &mut shared);
    // With a fresh generator the first run is reproduced.
    let mut fresh = Xoshiro256pp::new(11);
    let mut proto2 = Decay::new();
    let first_again = run_protocol(&g, 0, &mut proto2, RunConfig::for_graph(600), &mut fresh);
    assert_eq!(first, first_again);
    // (The second run from the advanced state will generally differ.)
    let _ = second;
}
