//! Cross-crate property-based tests (proptest): the simulator, samplers,
//! and cover machinery satisfy their invariants on arbitrary inputs, and
//! the optimized engine agrees with the naive reference everywhere.

use proptest::prelude::*;
use radio_broadcast::prelude::*;
use radio_graph::bipartite::{covered_targets, is_independent_cover};
use radio_graph::cover::greedy_radio_cover;
use radio_graph::Layering;
use radio_sim::reference::reference_round;
use radio_sim::{BroadcastState, RoundEngine};

/// Strategy: a small random graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges.min(120))
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_reference(
        g in arb_graph(),
        seed in any::<u64>(),
        informed_frac in 0.0f64..1.0,
        transmit_frac in 0.0f64..1.0,
    ) {
        let n = g.n();
        let mut rng = Xoshiro256pp::new(seed);
        let mut state = BroadcastState::new(n, 0);
        for v in 1..n as NodeId {
            if rng.coin(informed_frac) {
                state.inform(v, 0);
            }
        }
        let transmitters: Vec<NodeId> =
            (0..n as NodeId).filter(|_| rng.coin(transmit_frac)).collect();

        for policy in [TransmitterPolicy::InformedOnly, TransmitterPolicy::Unrestricted] {
            let expected = reference_round(&g, &state, &transmitters, policy);
            let mut st = state.clone();
            let mut engine = RoundEngine::with_policy(&g, policy);
            let out = engine.execute_round(&mut st, &transmitters, 1);
            let got: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| !state.is_informed(v) && st.is_informed(v))
                .collect();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(out.newly_informed, expected.len());
        }
    }

    #[test]
    fn gnp_graphs_are_valid(n in 2usize..400, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let g = sample_gnp(n, p, &mut rng);
        prop_assert!(g.check_invariants());
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn gnm_exact_edge_count(n in 2usize..120, seed in any::<u64>()) {
        let total = n * (n - 1) / 2;
        let mut rng = Xoshiro256pp::new(seed);
        let m = (rng.below(total as u64 + 1)) as usize;
        let g = radio_graph::gnm::sample_gnm(n, m, &mut rng);
        prop_assert_eq!(g.m(), m);
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn layering_is_a_bfs(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let source = rng.below(g.n() as u64) as NodeId;
        let l = Layering::new(&g, source);
        // Every reachable non-source node has a parent one layer down and
        // no neighbor more than one layer away in either direction.
        for v in 0..g.n() as NodeId {
            if let Some(dv) = l.distance(v) {
                if dv > 0 {
                    let mut has_parent = false;
                    for &w in g.neighbors(v) {
                        let dw = l.distance(w).expect("neighbor of reachable unreachable");
                        prop_assert!((i64::from(dw) - i64::from(dv)).abs() <= 1);
                        has_parent |= dw + 1 == dv;
                    }
                    prop_assert!(has_parent);
                }
            }
        }
    }

    #[test]
    fn greedy_cover_output_is_independent_cover(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let n = g.n();
        let mut rng = Xoshiro256pp::new(seed);
        let candidates: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.coin(0.5)).collect();
        let targets: Vec<NodeId> = (0..n as NodeId)
            .filter(|v| !candidates.contains(v))
            .collect();
        let sel = greedy_radio_cover(&g, &candidates, &targets, Some(&mut rng));
        prop_assert!(is_independent_cover(&g, &sel.transmitters, &sel.covered));
        // covered_targets agrees with the selection's own accounting.
        let recheck = covered_targets(&g, &sel.transmitters, &targets);
        prop_assert_eq!(recheck, sel.covered);
    }

    #[test]
    fn schedule_replay_never_exceeds_builder_length(
        n in 10usize..80,
        d in 3.0f64..15.0,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::new(seed);
        let p = (d / n as f64).min(0.9);
        let g = sample_gnp(n, p, &mut rng);
        let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
        let replay = run_schedule(
            &g,
            0,
            &built.schedule,
            TransmitterPolicy::InformedOnly,
            TraceLevel::SummaryOnly,
        );
        prop_assert_eq!(replay.completed, built.completed);
        prop_assert!(replay.rounds as usize <= built.len());
        prop_assert_eq!(replay.informed, built.informed);
    }

    #[test]
    fn broadcast_state_counts_consistent(
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut st = BroadcastState::new(n, 0);
        for _ in 0..n {
            let v = rng.below(n as u64) as NodeId;
            st.inform(v, 1);
            prop_assert_eq!(st.informed_count() + st.uninformed_count(), n);
        }
        prop_assert_eq!(st.informed_nodes().count(), st.informed_count());
    }
}
