//! Cross-crate randomized property tests: the simulator, samplers, and
//! cover machinery satisfy their invariants on seeded random inputs, and
//! the optimized engine agrees with the naive reference everywhere.
//!
//! Cases are generated from deterministic per-case seeds (no external
//! property-testing dependency); assertions carry the case index.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::bipartite::{covered_targets, is_independent_cover};
use radio_graph::cover::greedy_radio_cover;
use radio_graph::{derive_seed, Layering};
use radio_sim::reference::reference_round;
use radio_sim::{BroadcastState, EngineKernel, KernelUsed, RoundEngine};

const CASES: u64 = 64;

fn for_each_case(master: u64, body: impl Fn(u64, &mut Xoshiro256pp)) {
    for case in 0..CASES {
        let mut rng = Xoshiro256pp::new(derive_seed(master, case));
        body(case, &mut rng);
    }
}

/// A small random graph: 2..40 nodes, up to min(maxE, 120) candidate edges.
fn random_graph(rng: &mut Xoshiro256pp) -> Graph {
    let n = 2 + rng.below(38) as usize;
    let max_edges = (n * (n - 1) / 2).min(120);
    let edges = rng.below(max_edges as u64 + 1) as usize;
    let list: Vec<(NodeId, NodeId)> = (0..edges)
        .map(|_| (rng.below(n as u64) as NodeId, rng.below(n as u64) as NodeId))
        .collect();
    Graph::from_edges(n, list)
}

#[test]
fn engine_matches_reference() {
    for_each_case(0xE16, |case, rng| {
        let g = random_graph(rng);
        let n = g.n();
        let informed_frac = rng.next_f64();
        let transmit_frac = rng.next_f64();
        let mut state = BroadcastState::new(n, 0);
        for v in 1..n as NodeId {
            if rng.coin(informed_frac) {
                state.inform(v, 0);
            }
        }
        let transmitters: Vec<NodeId> = (0..n as NodeId)
            .filter(|_| rng.coin(transmit_frac))
            .collect();

        for policy in [
            TransmitterPolicy::InformedOnly,
            TransmitterPolicy::Unrestricted,
        ] {
            let expected = reference_round(&g, &state, &transmitters, policy);
            let mut st = state.clone();
            let mut engine = RoundEngine::with_policy(&g, policy);
            let out = engine.execute_round(&mut st, &transmitters, 1);
            let got: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| !state.is_informed(v) && st.is_informed(v))
                .collect();
            assert_eq!(got, expected, "case {case}");
            assert_eq!(out.newly_informed, expected.len(), "case {case}");
        }
    });
}

/// Differential test of the two round kernels against the oracle across
/// the paper's density regimes: sparse (`p ≈ 2/n`), the experiments' bulk
/// regime, and near-dense graphs — under both transmitter policies, with
/// transmitter sets that include duplicates and uninformed nodes.
#[test]
fn kernels_match_reference_across_density_regimes() {
    for_each_case(0xD1F, |case, rng| {
        let n = 16 + rng.below(112) as usize;
        let p = match case % 3 {
            0 => 2.0 / n as f64,
            1 => 0.15,
            _ => 0.6,
        };
        let g = sample_gnp(n, p, rng);
        let mut state = BroadcastState::new(n, 0);
        for v in 1..n as NodeId {
            if rng.coin(0.5) {
                state.inform(v, 0);
            }
        }
        // Deliberately messy transmitter set: random nodes (informed or
        // not), with every third entry duplicated.
        let mut transmitters: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.coin(0.3)).collect();
        let dups: Vec<NodeId> = transmitters.iter().copied().step_by(3).collect();
        transmitters.extend(dups);

        for policy in [
            TransmitterPolicy::InformedOnly,
            TransmitterPolicy::Unrestricted,
        ] {
            let expected = reference_round(&g, &state, &transmitters, policy);
            for kernel in [EngineKernel::Sparse, EngineKernel::Dense] {
                let mut st = state.clone();
                let mut engine = RoundEngine::with_policy(&g, policy).with_kernel(kernel);
                let out = engine.execute_round(&mut st, &transmitters, 1);
                let got: Vec<NodeId> = (0..n as NodeId)
                    .filter(|&v| !state.is_informed(v) && st.is_informed(v))
                    .collect();
                assert_eq!(got, expected, "case {case}, {policy:?}, {kernel:?}");
                assert_eq!(
                    out.newly_informed,
                    expected.len(),
                    "case {case}, {policy:?}, {kernel:?}"
                );
            }
        }
    });
}

/// The three kernel selections produce identical `RoundOutcome` sequences
/// and final states over full multi-round runs — and under lossy delivery
/// they consume the RNG identically (same residual stream).
#[test]
fn kernel_choice_invisible_in_multi_round_runs() {
    for_each_case(0xD20, |case, rng| {
        let n = 32 + rng.below(96) as usize;
        let p = [0.08, 0.25][case as usize % 2];
        let g = sample_gnp(n, p, rng);
        let loss = if case % 2 == 0 { 0.0 } else { 0.3 };
        let sched_seed = derive_seed(0xD20, case ^ 0xFF);

        let mut runs = Vec::new();
        for kernel in [
            EngineKernel::Sparse,
            EngineKernel::Dense,
            EngineKernel::Auto,
        ] {
            let mut engine = RoundEngine::new(&g).with_kernel(kernel);
            let mut st = BroadcastState::new(n, 0);
            let mut sched_rng = Xoshiro256pp::new(sched_seed);
            let mut loss_rng = Xoshiro256pp::new(sched_seed ^ 1);
            let mut outcomes = Vec::new();
            for round in 1..=25u32 {
                let tx: Vec<NodeId> = st
                    .informed_vec()
                    .into_iter()
                    .filter(|_| sched_rng.coin(0.3))
                    .collect();
                let out = if loss > 0.0 {
                    engine.execute_round_lossy(&mut st, &tx, round, loss, &mut loss_rng)
                } else {
                    engine.execute_round(&mut st, &tx, round)
                };
                outcomes.push(out);
            }
            runs.push((st, outcomes, loss_rng.next()));
        }
        assert_eq!(runs[0], runs[1], "case {case}: sparse vs dense");
        assert_eq!(runs[0], runs[2], "case {case}: sparse vs auto");
    });
}

/// Run reports are byte-identical across kernel selections except for the
/// informational `kernel` field.
#[test]
fn run_reports_byte_identical_modulo_kernel_field() {
    use radio_sim::{run_protocol, Protocol, RunConfig};

    struct Flood;
    impl Protocol for Flood {
        fn name(&self) -> String {
            "flood".into()
        }
        fn transmits(&mut self, _n: radio_sim::LocalNode, rng: &mut Xoshiro256pp) -> bool {
            rng.coin(0.2)
        }
    }

    let g = sample_gnp(512, 0.1, &mut Xoshiro256pp::new(0xBEEF));
    let mut renders = Vec::new();
    for kernel in [
        EngineKernel::Sparse,
        EngineKernel::Dense,
        EngineKernel::Auto,
    ] {
        let mut rng = Xoshiro256pp::new(77);
        let cfg = RunConfig::for_graph(512).with_kernel(kernel);
        let result = run_protocol(&g, 0, &mut Flood, cfg, &mut rng);
        let report = radio_sim::RunReport::from_result("flood", &result).with_seed(77);
        renders.push((result.kernel, report.to_json().render_pretty()));
    }
    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.trim_start().starts_with("\"kernel\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(renders[0].0, KernelUsed::Sparse);
    assert_eq!(renders[1].0, KernelUsed::Dense);
    assert_eq!(strip(&renders[0].1), strip(&renders[1].1));
    assert_eq!(strip(&renders[0].1), strip(&renders[2].1));
    // The kernel lines themselves differ, proving the field is live.
    assert_ne!(renders[0].1, renders[1].1);
}

/// Two-level Monte-Carlo composition: `run_trials` fanning lane-batched
/// runs over the thread pool is deterministic (parallel == serial), and the
/// nested lane results equal direct scalar runs on the same derived
/// streams — the composition the bench harness relies on for threads×64
/// effective parallelism.
#[test]
fn run_trials_batch_composition_deterministic() {
    use radio_sim::{run_protocol, run_protocol_batch, run_trials, run_trials_serial, RunConfig};

    let lanes = 8usize;
    let job = |i: usize, rng: &mut Xoshiro256pp| {
        let n = 48 + 16 * (i % 3);
        let g = sample_gnp(n, 0.12, rng);
        let source = rng.below(n as u64) as NodeId;
        let lane_seed = rng.next();
        let cfg = RunConfig::for_graph(n).with_max_rounds(40);
        let results = run_protocol_batch(
            &g,
            source,
            &mut ConstantProb::new(0.25),
            cfg,
            lane_seed,
            lanes,
        );
        let digest: Vec<(bool, u32, usize)> = results
            .iter()
            .map(|r| (r.completed, r.rounds, r.informed))
            .collect();
        // Cross-check one lane against a direct scalar run on its stream.
        let mut lane_rng = radio_graph::child_rng(lane_seed, (i % lanes) as u64);
        let scalar = run_protocol(&g, source, &mut ConstantProb::new(0.25), cfg, &mut lane_rng);
        assert_eq!(
            digest[i % lanes],
            (scalar.completed, scalar.rounds, scalar.informed),
            "trial {i}"
        );
        digest
    };
    let par = run_trials(12, 0xC0FFEE, job);
    let ser = run_trials_serial(12, 0xC0FFEE, job);
    assert_eq!(par, ser);
}

#[test]
fn gnp_graphs_are_valid() {
    for_each_case(0x96B, |case, rng| {
        let n = 2 + rng.below(398) as usize;
        let p = rng.next_f64() * 0.3;
        let g = sample_gnp(n, p, rng);
        assert!(g.check_invariants(), "case {case}");
        assert_eq!(g.n(), n, "case {case}");
    });
}

#[test]
fn gnm_exact_edge_count() {
    for_each_case(0x96C, |case, rng| {
        let n = 2 + rng.below(118) as usize;
        let total = n * (n - 1) / 2;
        let m = rng.below(total as u64 + 1) as usize;
        let g = radio_graph::gnm::sample_gnm(n, m, rng);
        assert_eq!(g.m(), m, "case {case}");
        assert!(g.check_invariants(), "case {case}");
    });
}

#[test]
fn layering_is_a_bfs() {
    for_each_case(0x1AB, |case, rng| {
        let g = random_graph(rng);
        let source = rng.below(g.n() as u64) as NodeId;
        let l = Layering::new(&g, source);
        // Every reachable non-source node has a parent one layer down and
        // no neighbor more than one layer away in either direction.
        for v in 0..g.n() as NodeId {
            if let Some(dv) = l.distance(v) {
                if dv > 0 {
                    let mut has_parent = false;
                    for &w in g.neighbors(v) {
                        let dw = l.distance(w).expect("neighbor of reachable unreachable");
                        assert!((i64::from(dw) - i64::from(dv)).abs() <= 1, "case {case}");
                        has_parent |= dw + 1 == dv;
                    }
                    assert!(has_parent, "case {case}");
                }
            }
        }
    });
}

#[test]
fn greedy_cover_output_is_independent_cover() {
    for_each_case(0x9C0, |case, rng| {
        let g = random_graph(rng);
        let n = g.n();
        let candidates: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.coin(0.5)).collect();
        let targets: Vec<NodeId> = (0..n as NodeId)
            .filter(|v| !candidates.contains(v))
            .collect();
        let sel = greedy_radio_cover(&g, &candidates, &targets, Some(rng));
        assert!(
            is_independent_cover(&g, &sel.transmitters, &sel.covered),
            "case {case}"
        );
        // covered_targets agrees with the selection's own accounting.
        let recheck = covered_targets(&g, &sel.transmitters, &targets);
        assert_eq!(recheck, sel.covered, "case {case}");
    });
}

#[test]
fn schedule_replay_never_exceeds_builder_length() {
    for_each_case(0x5C4, |case, rng| {
        let n = 10 + rng.below(70) as usize;
        let d = 3.0 + rng.next_f64() * 12.0;
        let p = (d / n as f64).min(0.9);
        let g = sample_gnp(n, p, rng);
        let built = build_eg_schedule(&g, 0, CentralizedParams::default(), rng);
        let replay = run_schedule(
            &g,
            0,
            &built.schedule,
            TransmitterPolicy::InformedOnly,
            TraceLevel::SummaryOnly,
        );
        assert_eq!(replay.completed, built.completed, "case {case}");
        assert!(replay.rounds as usize <= built.len(), "case {case}");
        assert_eq!(replay.informed, built.informed, "case {case}");
    });
}

#[test]
fn broadcast_state_counts_consistent() {
    for_each_case(0xB5C, |case, rng| {
        let n = 1 + rng.below(199) as usize;
        let mut st = BroadcastState::new(n, 0);
        for _ in 0..n {
            let v = rng.below(n as u64) as NodeId;
            st.inform(v, 1);
            assert_eq!(
                st.informed_count() + st.uninformed_count(),
                n,
                "case {case}"
            );
        }
        assert_eq!(
            st.informed_nodes().count(),
            st.informed_count(),
            "case {case}"
        );
    });
}
