//! Cross-crate randomized property tests: the simulator, samplers, and
//! cover machinery satisfy their invariants on seeded random inputs, and
//! the optimized engine agrees with the naive reference everywhere.
//!
//! Cases are generated from deterministic per-case seeds (no external
//! property-testing dependency); assertions carry the case index.

use radio_broadcast::prelude::*;
use radio_graph::bipartite::{covered_targets, is_independent_cover};
use radio_graph::cover::greedy_radio_cover;
use radio_graph::{derive_seed, Layering};
use radio_sim::reference::reference_round;
use radio_sim::{BroadcastState, RoundEngine};

const CASES: u64 = 64;

fn for_each_case(master: u64, body: impl Fn(u64, &mut Xoshiro256pp)) {
    for case in 0..CASES {
        let mut rng = Xoshiro256pp::new(derive_seed(master, case));
        body(case, &mut rng);
    }
}

/// A small random graph: 2..40 nodes, up to min(maxE, 120) candidate edges.
fn random_graph(rng: &mut Xoshiro256pp) -> Graph {
    let n = 2 + rng.below(38) as usize;
    let max_edges = (n * (n - 1) / 2).min(120);
    let edges = rng.below(max_edges as u64 + 1) as usize;
    let list: Vec<(NodeId, NodeId)> = (0..edges)
        .map(|_| (rng.below(n as u64) as NodeId, rng.below(n as u64) as NodeId))
        .collect();
    Graph::from_edges(n, list)
}

#[test]
fn engine_matches_reference() {
    for_each_case(0xE16, |case, rng| {
        let g = random_graph(rng);
        let n = g.n();
        let informed_frac = rng.next_f64();
        let transmit_frac = rng.next_f64();
        let mut state = BroadcastState::new(n, 0);
        for v in 1..n as NodeId {
            if rng.coin(informed_frac) {
                state.inform(v, 0);
            }
        }
        let transmitters: Vec<NodeId> = (0..n as NodeId)
            .filter(|_| rng.coin(transmit_frac))
            .collect();

        for policy in [
            TransmitterPolicy::InformedOnly,
            TransmitterPolicy::Unrestricted,
        ] {
            let expected = reference_round(&g, &state, &transmitters, policy);
            let mut st = state.clone();
            let mut engine = RoundEngine::with_policy(&g, policy);
            let out = engine.execute_round(&mut st, &transmitters, 1);
            let got: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| !state.is_informed(v) && st.is_informed(v))
                .collect();
            assert_eq!(got, expected, "case {case}");
            assert_eq!(out.newly_informed, expected.len(), "case {case}");
        }
    });
}

#[test]
fn gnp_graphs_are_valid() {
    for_each_case(0x96B, |case, rng| {
        let n = 2 + rng.below(398) as usize;
        let p = rng.next_f64() * 0.3;
        let g = sample_gnp(n, p, rng);
        assert!(g.check_invariants(), "case {case}");
        assert_eq!(g.n(), n, "case {case}");
    });
}

#[test]
fn gnm_exact_edge_count() {
    for_each_case(0x96C, |case, rng| {
        let n = 2 + rng.below(118) as usize;
        let total = n * (n - 1) / 2;
        let m = rng.below(total as u64 + 1) as usize;
        let g = radio_graph::gnm::sample_gnm(n, m, rng);
        assert_eq!(g.m(), m, "case {case}");
        assert!(g.check_invariants(), "case {case}");
    });
}

#[test]
fn layering_is_a_bfs() {
    for_each_case(0x1AB, |case, rng| {
        let g = random_graph(rng);
        let source = rng.below(g.n() as u64) as NodeId;
        let l = Layering::new(&g, source);
        // Every reachable non-source node has a parent one layer down and
        // no neighbor more than one layer away in either direction.
        for v in 0..g.n() as NodeId {
            if let Some(dv) = l.distance(v) {
                if dv > 0 {
                    let mut has_parent = false;
                    for &w in g.neighbors(v) {
                        let dw = l.distance(w).expect("neighbor of reachable unreachable");
                        assert!((i64::from(dw) - i64::from(dv)).abs() <= 1, "case {case}");
                        has_parent |= dw + 1 == dv;
                    }
                    assert!(has_parent, "case {case}");
                }
            }
        }
    });
}

#[test]
fn greedy_cover_output_is_independent_cover() {
    for_each_case(0x9C0, |case, rng| {
        let g = random_graph(rng);
        let n = g.n();
        let candidates: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.coin(0.5)).collect();
        let targets: Vec<NodeId> = (0..n as NodeId)
            .filter(|v| !candidates.contains(v))
            .collect();
        let sel = greedy_radio_cover(&g, &candidates, &targets, Some(rng));
        assert!(
            is_independent_cover(&g, &sel.transmitters, &sel.covered),
            "case {case}"
        );
        // covered_targets agrees with the selection's own accounting.
        let recheck = covered_targets(&g, &sel.transmitters, &targets);
        assert_eq!(recheck, sel.covered, "case {case}");
    });
}

#[test]
fn schedule_replay_never_exceeds_builder_length() {
    for_each_case(0x5C4, |case, rng| {
        let n = 10 + rng.below(70) as usize;
        let d = 3.0 + rng.next_f64() * 12.0;
        let p = (d / n as f64).min(0.9);
        let g = sample_gnp(n, p, rng);
        let built = build_eg_schedule(&g, 0, CentralizedParams::default(), rng);
        let replay = run_schedule(
            &g,
            0,
            &built.schedule,
            TransmitterPolicy::InformedOnly,
            TraceLevel::SummaryOnly,
        );
        assert_eq!(replay.completed, built.completed, "case {case}");
        assert!(replay.rounds as usize <= built.len(), "case {case}");
        assert_eq!(replay.informed, built.informed, "case {case}");
    });
}

#[test]
fn broadcast_state_counts_consistent() {
    for_each_case(0xB5C, |case, rng| {
        let n = 1 + rng.below(199) as usize;
        let mut st = BroadcastState::new(n, 0);
        for _ in 0..n {
            let v = rng.below(n as u64) as NodeId;
            st.inform(v, 1);
            assert_eq!(
                st.informed_count() + st.uninformed_count(),
                n,
                "case {case}"
            );
        }
        assert_eq!(
            st.informed_nodes().count(),
            st.informed_count(),
            "case {case}"
        );
    });
}
