//! Cross-backend differential suite: implicit vs explicit bit-identity.
//!
//! The tentpole contract of the `GraphProvider` refactor: a run on the
//! seed-only implicit `G(n, p)` backend is **bit-identical** to the run on
//! the explicit CSR materialization of the same `(n, p, seed)` triple —
//! same informed sets, same traces, same fault summaries, and the same
//! residual RNG stream — across the sparse, dense, and lane-batched
//! explicit kernels, with and without faults and loss, and for any shard
//! count.
//!
//! Shard counts are passed directly (1 and 4 — what `RADIO_THREADS=1/4`
//! would give the CLI) rather than via the environment variable, which
//! only `runner.rs`'s own test may set: env vars are process-global and
//! the test harness runs concurrently.
//!
//! The only [`RunResult`] field allowed to differ between backends is the
//! informational `kernel` tag; every comparison normalizes it first.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::{child_rng, GraphProvider, ImplicitGnp, Xoshiro256pp};
use radio_sim::{
    run_protocol, run_protocol_batch, run_protocol_faulty, run_protocol_provider,
    run_protocol_provider_faulty, EngineKernel, FaultConfig, FaultPlan, KernelUsed, Protocol,
    RunConfig, RunResult,
};

const SIZES: [usize; 2] = [256, 4096];
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Connectivity-regime edge probability for the differential points,
/// matching the Theorem 7 sweeps: `p = 2.5 ln n / n`.
fn threshold_p(n: usize) -> f64 {
    (2.5 * (n as f64).ln() / n as f64).min(1.0)
}

fn normalized(mut r: RunResult) -> RunResult {
    r.kernel = KernelUsed::Sweep;
    r
}

type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

fn protocol_factories(p: f64) -> Vec<(&'static str, ProtocolFactory)> {
    vec![
        (
            "eg",
            Box::new(move || Box::new(EgDistributed::new(p)) as Box<dyn Protocol>),
        ),
        (
            "decay",
            Box::new(|| Box::new(Decay::new()) as Box<dyn Protocol>),
        ),
    ]
}

/// The kitchen-sink fault plan used for the faulted+lossy points: crashes,
/// sleeps, jammers, and a Gilbert–Elliott burst channel, generated
/// adversarially with the source exempted.
fn combined_plan(imp: &ImplicitGnp) -> FaultPlan {
    let g = imp.materialize();
    FaultPlan::generate(
        &g,
        &FaultConfig {
            crash_rate: 0.05,
            sleep_rate: 0.1,
            jammers: 2,
            burst: Some(radio_sim::BurstParams {
                p_bad: 0.25,
                p_good: 0.3,
            }),
            exempt: Some(0),
            ..FaultConfig::default()
        },
        4242,
    )
}

/// Plain and lossy runs: implicit (shards ∈ {1, 4}) equals explicit on
/// both scalar kernels, draw-for-draw.
#[test]
fn implicit_matches_explicit_scalar_kernels() {
    for n in SIZES {
        let p = threshold_p(n);
        let imp = ImplicitGnp::new(n, p, 20060501 ^ n as u64);
        let g = imp.materialize();
        for loss in [0.0, 0.25] {
            let cfg = RunConfig::for_graph(n).with_loss(loss);
            for (proto_name, make) in protocol_factories(p) {
                let mut want: Option<(RunResult, u64)> = None;
                for kernel in [EngineKernel::Sparse, EngineKernel::Dense] {
                    let mut rng = Xoshiro256pp::new(7 + n as u64);
                    let mut proto = make();
                    let r = run_protocol(&g, 0, proto.as_mut(), cfg.with_kernel(kernel), &mut rng);
                    let got = (normalized(r), rng.next());
                    match &want {
                        None => want = Some(got),
                        Some(w) => assert_eq!(
                            *w, got,
                            "n={n} loss={loss} {proto_name}: explicit kernels disagree"
                        ),
                    }
                }
                let (want_result, want_residual) = want.unwrap();
                for shards in SHARD_COUNTS {
                    let mut rng = Xoshiro256pp::new(7 + n as u64);
                    let mut proto = make();
                    let r = run_protocol_provider(&imp, shards, 0, proto.as_mut(), cfg, &mut rng);
                    assert_eq!(r.kernel, KernelUsed::Sweep);
                    assert_eq!(
                        want_result, r,
                        "n={n} loss={loss} {proto_name} shards={shards}: implicit diverged"
                    );
                    assert_eq!(
                        want_residual,
                        rng.next(),
                        "n={n} loss={loss} {proto_name} shards={shards}: residual RNG diverged"
                    );
                }
            }
        }
    }
}

/// The faulted+lossy point: crash+sleep+jam+burst plan with i.i.d. loss on
/// top, implicit (shards ∈ {1, 4}) vs explicit on both scalar kernels —
/// including identical fault events and graceful-degradation summaries.
#[test]
fn faulted_lossy_backends_bit_identical() {
    for n in SIZES {
        let p = threshold_p(n);
        let imp = ImplicitGnp::new(n, p, 31337 + n as u64);
        let g = imp.materialize();
        let plan = combined_plan(&imp);
        let cfg = RunConfig::for_graph(n).with_loss(0.2);
        let mut want: Option<(RunResult, u64)> = None;
        for kernel in [EngineKernel::Sparse, EngineKernel::Dense] {
            let mut rng = Xoshiro256pp::new(99);
            let mut proto = EgDistributed::new(p);
            let r =
                run_protocol_faulty(&g, 0, &mut proto, cfg.with_kernel(kernel), &plan, &mut rng);
            assert!(
                r.faults.is_some(),
                "faulty runs must carry a degradation summary"
            );
            let got = (normalized(r), rng.next());
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(*w, got, "n={n}: explicit kernels disagree under faults"),
            }
        }
        let (want_result, want_residual) = want.unwrap();
        for shards in SHARD_COUNTS {
            let mut rng = Xoshiro256pp::new(99);
            let mut proto = EgDistributed::new(p);
            let r = run_protocol_provider_faulty(&imp, shards, 0, &mut proto, cfg, &plan, &mut rng);
            assert_eq!(
                want_result, r,
                "n={n} shards={shards}: faulted+lossy implicit diverged"
            );
            assert_eq!(
                want_residual,
                rng.next(),
                "n={n} shards={shards}: residual RNG diverged under faults"
            );
        }
    }
}

/// The lane-batched explicit kernel against the implicit backend: batch
/// lane `l` must equal the implicit run seeded with `child_rng(master, l)`.
#[test]
fn batch_lanes_match_implicit_backend() {
    let n = 256;
    let p = threshold_p(n);
    let imp = ImplicitGnp::new(n, p, 777);
    let g = imp.materialize();
    let cfg = RunConfig::for_graph(n);
    let master = 4096u64;
    let lanes = 16;
    let mut proto = EgDistributed::new(p);
    let batch = run_protocol_batch(&g, 0, &mut proto, cfg, master, lanes);
    assert_eq!(batch.len(), lanes);
    for (lane, lane_result) in batch.iter().enumerate() {
        assert_eq!(lane_result.kernel, KernelUsed::Batch);
        for shards in SHARD_COUNTS {
            let mut rng = child_rng(master, lane as u64);
            let mut proto = EgDistributed::new(p);
            let r = run_protocol_provider(&imp, shards, 0, &mut proto, cfg, &mut rng);
            assert_eq!(
                normalized(lane_result.clone()),
                r,
                "lane {lane} shards={shards}: batch vs implicit diverged"
            );
        }
    }
}

/// The exec-planner lane planes on the implicit backend: a batched
/// `RunSpec` run at 1, 7, and 64 lanes must put in lane `l` exactly the
/// scalar explicit-CSR run seeded with `child_rng(master, l)` — plain,
/// lossy, and under the kitchen-sink fault plan alike.
#[test]
fn implicit_lane_planes_match_explicit_scalar_runs() {
    use radio_sim::RunSpec;
    let n = 512;
    let p = threshold_p(n);
    let imp = ImplicitGnp::new(n, p, 60309 ^ n as u64);
    let g = imp.materialize();
    let plan = combined_plan(&imp);
    let master = 271_828u64;
    let variants: [(&str, RunConfig, Option<&FaultPlan>); 3] = [
        ("plain", RunConfig::for_graph(n), None),
        ("lossy", RunConfig::for_graph(n).with_loss(0.25), None),
        (
            "faulted",
            RunConfig::for_graph(n).with_loss(0.1),
            Some(&plan),
        ),
    ];
    for (variant, cfg, fault_plan) in variants {
        for lanes in [1usize, 7, 64] {
            for shards in SHARD_COUNTS {
                let mut proto = EgDistributed::new(p);
                let mut rspec = RunSpec::on_provider(&imp, shards, 0)
                    .with_config(cfg)
                    .with_lanes(lanes)
                    .with_master_seed(master);
                if let Some(fp) = fault_plan {
                    rspec = rspec.with_faults(fp);
                }
                let outcome = rspec.run(&mut proto);
                assert_eq!(outcome.lanes.len(), lanes);
                assert_eq!(outcome.plan.lanes, lanes);
                for (lane, lane_result) in outcome.lanes.iter().enumerate() {
                    let mut rng = child_rng(master, lane as u64);
                    let mut proto = EgDistributed::new(p);
                    let mut scalar = RunSpec::on_graph(&g, 0).with_config(cfg);
                    if let Some(fp) = fault_plan {
                        scalar = scalar.with_faults(fp);
                    }
                    let want = scalar.run_with_rng(&mut proto, &mut rng).into_single();
                    assert_eq!(
                        normalized(want),
                        normalized(lane_result.clone()),
                        "{variant} lanes={lanes} shards={shards} lane {lane}: \
                         implicit lane plane diverged from explicit scalar"
                    );
                }
            }
        }
    }
}

/// The sharded backend on an explicit CSR (shards > 1 forces the sweep)
/// equals the classic engine run on the same graph.
#[test]
fn sharded_explicit_matches_round_engine() {
    for n in SIZES {
        let p = threshold_p(n);
        let imp = ImplicitGnp::new(n, p, 1234);
        let g = imp.materialize();
        let cfg = RunConfig::for_graph(n);
        let mut rng_a = Xoshiro256pp::new(5);
        let mut proto_a = EgDistributed::new(p);
        let want = normalized(run_protocol(&g, 1, &mut proto_a, cfg, &mut rng_a));
        let want_residual = rng_a.next();
        for shards in [4, 9] {
            let mut rng_b = Xoshiro256pp::new(5);
            let mut proto_b = EgDistributed::new(p);
            let r = run_protocol_provider(&g, shards, 1, &mut proto_b, cfg, &mut rng_b);
            assert_eq!(r.kernel, KernelUsed::Sweep);
            assert_eq!(want, r, "n={n} shards={shards}");
            assert_eq!(want_residual, rng_b.next(), "n={n} shards={shards}");
        }
    }
}
