//! Cross-crate contract for the `radio-node` broadcast service: the
//! event-loop cluster built on `radio-broadcast`'s Thm-7 cadence and
//! `radio-sim`'s fault plans must recover from partitions and crashes
//! with full coverage, and whole workload runs must be bit-reproducible
//! from the master seed.

use radio_node::{
    run_workload, BackoffPolicy, Body, GossipNode, Message, NetConfig, Partition, SimNet,
    WorkloadConfig, CLIENT,
};
use radio_sim::{FaultConfig, FaultPlan, Json};

fn damaged_config(seed: u64, trials: usize) -> WorkloadConfig {
    let mut cfg = WorkloadConfig {
        n: 96,
        degree: 12.0,
        ops: 12,
        ticks: 900,
        trials,
        seed,
        ..WorkloadConfig::default()
    };
    cfg.faults = FaultConfig::parse("crash=0.05,sleep=0.1").unwrap();
    cfg.net.loss = 0.02;
    cfg.net.partitions = vec![Partition {
        from: 10,
        to: 180,
        groups: 2,
    }];
    cfg
}

#[test]
fn partitioned_crashing_cluster_recovers_to_full_coverage() {
    let report = run_workload(&damaged_config(2024, 2));
    assert_eq!(
        report.coverage, 1.0,
        "live reachable nodes must converge: {report:?}"
    );
    assert_eq!(report.converged_trials, 2);
    assert!(
        report.post_heal_ticks > 0,
        "convergence is gated on the heal"
    );
    assert!(
        report.retries > 0,
        "the damage must exercise the retry path"
    );
    assert!(report.msgs_dropped > 0);
    assert!(report.delivery_p50 <= report.delivery_p99);
}

#[test]
fn workload_reports_are_seed_reproducible_bytes() {
    let render = |seed: u64| {
        run_workload(&damaged_config(seed, 2))
            .strip_timing()
            .to_json()
            .render()
    };
    let first = render(7);
    assert_eq!(first, render(7), "same seed, same bytes");
    assert_ne!(first, render(8), "seed must matter");
    // And the rendered report round-trips through the public parser.
    let parsed = radio_node::NodeReport::from_json(&Json::parse(&first).unwrap()).unwrap();
    assert_eq!(parsed.to_json().render(), first);
}

#[test]
fn gossip_values_survive_a_round_trip_through_the_wire_format() {
    // An in-process conversation rendered to JSON lines and parsed back
    // must drive a second node to the same state — the stdio mode and
    // the in-process mode speak the same protocol.
    let mk = || {
        GossipNode::new(
            radio_broadcast::distributed::Flooding,
            0,
            4,
            vec![1],
            5,
            BackoffPolicy::default(),
        )
    };
    let mut direct = mk();
    let mut via_wire = mk();
    let script = vec![
        Message {
            src: CLIENT,
            dest: 0,
            body: Body::Broadcast {
                msg_id: 1,
                value: 31,
            },
        },
        Message {
            src: 1,
            dest: 0,
            body: Body::Gossip {
                values: vec![31, 77],
            },
        },
        Message {
            src: CLIENT,
            dest: 0,
            body: Body::Read { msg_id: 2 },
        },
    ];
    for (t, msg) in script.into_iter().enumerate() {
        let now = t as u64 + 1;
        let a = direct.handle(msg.clone(), now);
        let relined = Message::from_line(&msg.to_line()).unwrap();
        let b = via_wire.handle(relined, now);
        assert_eq!(a, b);
    }
    assert_eq!(direct.values(), via_wire.values());
    assert!(direct.values().contains(&77));
}

#[test]
fn simnet_respects_the_shared_fault_plan() {
    // The same FaultPlan type the round engines consume drives the
    // event-loop network: a crash in the plan silences the node here too.
    let mut plan = FaultPlan::new(4);
    plan.crash(2, 3);
    let mut net = SimNet::new(4, plan, NetConfig::default(), 1);
    assert!(net.node_up(2, 2));
    assert!(!net.node_up(2, 3), "crashed from round 3 on");
    net.send(
        3,
        Message {
            src: 2,
            dest: 0,
            body: Body::Gossip { values: vec![1] },
        },
    );
    assert_eq!(
        net.stats.dropped_down, 1,
        "crashed sender transmits nothing"
    );
}
