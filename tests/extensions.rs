//! Integration tests for the extension features: gossiping, fault
//! injection, multi-source, unknown-degree protocol, tree scheduling, and
//! the exact-OPT cross-validation.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::components::is_connected;
use radio_sim::{run_protocol_multi, RunMetrics};

fn connected_gnp(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    for _ in 0..50 {
        let g = sample_gnp(n, p, rng);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected sample");
}

#[test]
fn gossiping_end_to_end() {
    let mut rng = Xoshiro256pp::new(1);
    let n = 400;
    let d = 20.0;
    let g = connected_gnp(n, d / n as f64, &mut rng);
    let mut strat = ConstantProb::new(1.0 / d);
    let r = run_radio_gossiping(&g, &mut strat, 20_000, &mut rng);
    assert!(r.completed);
    assert_eq!(r.knowledge_fraction, 1.0);
    // Θ(d·ln n) scale with slack.
    let scale = d * (n as f64).ln();
    assert!(
        (r.rounds as f64) < 6.0 * scale,
        "rounds {} vs scale {scale}",
        r.rounds
    );
}

#[test]
fn gossiping_dominates_broadcast_time() {
    // All-to-all can never beat one-to-all on the same instance/strategy.
    let mut rng = Xoshiro256pp::new(2);
    let n = 300;
    let d = 15.0;
    let g = connected_gnp(n, d / n as f64, &mut rng);
    let mut strat = ConstantProb::new(1.0 / d);
    let gossip = run_radio_gossiping(&g, &mut strat, 50_000, &mut Xoshiro256pp::new(7));
    let mut proto = ConstantProb::new(1.0 / d);
    let bcast = run_protocol(
        &g,
        0,
        &mut proto,
        RunConfig::for_graph(n),
        &mut Xoshiro256pp::new(7),
    );
    assert!(gossip.completed && bcast.completed);
    assert!(gossip.rounds >= bcast.rounds);
}

#[test]
fn lossy_broadcast_completes_and_slows_down() {
    let mut rng = Xoshiro256pp::new(3);
    let n = 2000;
    let p = 30.0 / n as f64;
    let g = connected_gnp(n, p, &mut rng);
    let mut a = EgDistributed::new(p);
    let clean = run_protocol(
        &g,
        0,
        &mut a,
        RunConfig::for_graph(n),
        &mut Xoshiro256pp::new(5),
    );
    let mut b = EgDistributed::new(p);
    let lossy = run_protocol(
        &g,
        0,
        &mut b,
        RunConfig::for_graph(n).with_loss(0.5),
        &mut Xoshiro256pp::new(5),
    );
    assert!(clean.completed && lossy.completed);
    assert!(lossy.rounds > clean.rounds);
}

#[test]
fn multi_source_never_slower_much() {
    let mut rng = Xoshiro256pp::new(4);
    let n = 1500;
    let p = 25.0 / n as f64;
    let g = connected_gnp(n, p, &mut rng);
    let mut proto = EgDistributed::new(p);
    let multi = run_protocol_multi(
        &g,
        &[0, 100, 200, 300],
        &mut proto,
        RunConfig::for_graph(n),
        &mut rng,
    );
    assert!(multi.completed);
}

#[test]
fn unknown_degree_protocol_is_density_free() {
    let mut rng = Xoshiro256pp::new(5);
    for &d in &[15.0, 150.0] {
        let n = 1200;
        let g = connected_gnp(n, d / n as f64, &mut rng);
        let mut proto = EgUnknownDegree::new();
        let r = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), &mut rng);
        assert!(r.completed, "d = {d}");
    }
}

#[test]
fn tree_schedule_verifies_and_is_collision_free() {
    let mut rng = Xoshiro256pp::new(6);
    let n = 800;
    let g = connected_gnp(n, 0.03, &mut rng);
    let built = tree_broadcast_schedule(&g, 0);
    assert!(built.completed);
    let cert = verify_schedule(&g, 0, &built.schedule).unwrap();
    assert_eq!(cert.collisions, 0);
}

#[test]
fn verify_rejects_tampered_schedule() {
    let mut rng = Xoshiro256pp::new(7);
    let n = 500;
    let g = connected_gnp(n, 0.04, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    // Tamper: drop the last round → incomplete (the builder stops as soon
    // as everyone is informed, so every round matters).
    let mut rounds: Vec<Vec<NodeId>> = built.schedule.iter().map(|r| r.to_vec()).collect();
    rounds.pop();
    let tampered = Schedule::from_rounds(rounds);
    assert!(matches!(
        verify_schedule(&g, 0, &tampered),
        Err(ScheduleViolation::Incomplete { .. })
    ));
}

#[test]
fn exact_opt_lower_bounds_all_schedulers() {
    use radio_broadcast::centralized::exact_optimal_rounds;
    let mut rng = Xoshiro256pp::new(8);
    for seed in 0..10u64 {
        let mut grng = Xoshiro256pp::new(seed);
        let g = sample_gnp(10, 0.4, &mut grng);
        let Some(opt) = exact_optimal_rounds(&g, 0) else {
            continue;
        };
        let eg = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
        let tree = tree_broadcast_schedule(&g, 0);
        if eg.completed {
            assert!(eg.len() as u32 >= opt, "EG beat OPT");
        }
        if tree.completed {
            assert!(tree.len() as u32 >= opt, "tree beat OPT");
        }
    }
}

#[test]
fn run_metrics_on_real_run() {
    let mut rng = Xoshiro256pp::new(9);
    let n = 2000;
    let p = 30.0 / n as f64;
    let g = connected_gnp(n, p, &mut rng);
    let mut proto = EgDistributed::new(p);
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::PerRound);
    let r = run_protocol(&g, 0, &mut proto, cfg, &mut rng);
    assert!(r.completed);
    let m = RunMetrics::from_result(&r);
    // Milestones are ordered.
    let (h, n90, n99) = (
        m.round_to_half.unwrap(),
        m.round_to_90.unwrap(),
        m.round_to_99.unwrap(),
    );
    assert!(h <= n90 && n90 <= n99 && n99 <= r.rounds);
    assert!(m.total_transmissions > 0);
    assert!(m.peak_round.is_some());
    assert!(m.tail_rounds(r.rounds, true).is_some());
}
