//! Golden-file tests for the JSON telemetry schemas.
//!
//! The rendered form of a [`RunReport`] and a [`BenchReport`] is pinned
//! byte-for-byte against committed files in `tests/golden/`.  A failure
//! here means the JSON schema changed: either fix the regression, or —
//! for an intentional schema change — bump the schema version, update
//! `docs/OBSERVABILITY.md`, and re-bless the files by running the tests
//! with `GOLDEN_UPDATE=1`.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use std::path::PathBuf;

use radio_bench::report::{BenchPoint, BenchReport};
use radio_sim::report::RunReport;
use radio_sim::{Json, RoundEvent};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or re-blesses it
/// when `GOLDEN_UPDATE` is set in the environment.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); bless with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "{name} drifted from its golden file; if the schema change is intentional, \
         bump the schema version and re-bless with GOLDEN_UPDATE=1"
    );
}

fn sample_run_report() -> RunReport {
    RunReport {
        algorithm: "eg".into(),
        n: 64,
        p: Some(0.125),
        seed: Some(42),
        completed: true,
        rounds: 2,
        informed: 64,
        coverage: 1.0,
        last_delivery_round: 2,
        total_transmissions: 9,
        total_collisions: 1,
        round_to_half: Some(1),
        round_to_90: Some(2),
        round_to_99: Some(2),
        wall_ns: Some(12_345),
        kernel: Some("dense".into()),
        threads: None,
        batch_lanes: None,
        plan_backend: Some("explicit".into()),
        plan_engine: Some("round".into()),
        plan_shards: Some(1),
        backoff_epochs: Some(vec![1, 18, 52]),
        faults: None,
        events: vec![
            RoundEvent {
                round: 1,
                transmitters: 1,
                reached: 40,
                collisions: 0,
                newly_informed: 40,
                informed_after: 41,
                elapsed_ns: 7_000,
            },
            RoundEvent {
                round: 2,
                transmitters: 8,
                reached: 30,
                collisions: 1,
                newly_informed: 23,
                informed_after: 64,
                elapsed_ns: 5_345,
            },
        ],
    }
}

fn sample_bench_report() -> BenchReport {
    let mut report = BenchReport::new("t7", "distributed broadcast in O(ln n) rounds", "quick", 42);
    report.push(
        BenchPoint::new("polylog/n=1024")
            .field("n", Json::from(1024i64))
            .field("mean_rounds", Json::from(18.5))
            .field("completed", Json::from(8i64))
            .field("trials", Json::from(8i64)),
    );
    report.push(
        BenchPoint::new("fit")
            .field("a", Json::from(2.25))
            // Non-integral on purpose: an integral float (3.0) renders as
            // "3" and parses back as an integer, which is fine for
            // consumers but not bit-stable for this round-trip check.
            .field("b", Json::from(3.5))
            .field("r_squared", Json::from(0.97)),
    );
    report
}

#[test]
fn run_report_matches_golden_file() {
    let report = sample_run_report();
    check_golden("run_report.json", &report.to_json().render_pretty());
}

#[test]
fn run_report_round_trips_through_golden_file() {
    let text = std::fs::read_to_string(golden_path("run_report.json")).unwrap();
    let parsed = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed, sample_run_report());
}

#[test]
fn bench_report_matches_golden_file() {
    let report = sample_bench_report();
    check_golden("bench_report.json", &report.to_json().render_pretty());
}

#[test]
fn bench_report_round_trips_through_golden_file() {
    let text = std::fs::read_to_string(golden_path("bench_report.json")).unwrap();
    let parsed = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    let expected = sample_bench_report();
    assert_eq!(parsed.experiment, expected.experiment);
    assert_eq!(parsed.claim, expected.claim);
    assert_eq!(parsed.mode, expected.mode);
    assert_eq!(parsed.seed, expected.seed);
    assert_eq!(parsed.points.len(), expected.points.len());
    for (a, b) in parsed.points.iter().zip(&expected.points) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.fields, b.fields);
    }
}

#[test]
fn compact_and_pretty_render_parse_identically() {
    let json = sample_run_report().to_json();
    let compact = Json::parse(&json.render()).unwrap();
    let pretty = Json::parse(&json.render_pretty()).unwrap();
    assert_eq!(compact, pretty);
}
