//! Cross-kernel fault-model differential suite.
//!
//! The determinism contract of the fault subsystem: a [`FaultPlan`] replays
//! bit-identically on the scalar sparse kernel, the scalar dense kernel,
//! and the 64-lane batch kernel — same informed sets, same coverage, same
//! fault events, same [`radio_sim::FaultSummary`], and the same residual
//! RNG stream.  This suite exercises the contract through the real
//! protocol stack (EG, Decay, and the epoch-restarting wrapper) rather
//! than the simulator's internal test protocols.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::distributed::{Decay, EgDistributed, Restartable};
use radio_graph::gnp::sample_gnp;
use radio_graph::{child_rng, Graph, GraphProvider, ImplicitGnp, Xoshiro256pp};
use radio_sim::{
    run_protocol_batch_faulty, run_protocol_faulty, EngineKernel, FaultConfig, FaultPlan,
    KernelUsed, Protocol, RunConfig, RunSpec, TraceLevel, MAX_LANES,
};

/// One fault plan per fault type, plus a kitchen-sink combination.
fn fault_cases(g: &Graph) -> Vec<(&'static str, FaultPlan)> {
    let n = g.n();
    let mut crash = FaultPlan::new(n);
    crash.crash(3, 2).crash(11, 6).crash(40, 12);
    let mut sleep = FaultPlan::new(n);
    sleep.sleep(5, 9).sleep(6, 15).sleep(70, 4);
    let mut jam = FaultPlan::new(n);
    jam.jam(20, 2, 10).jam(33, 1, u32::MAX);
    let mut burst = FaultPlan::new(n);
    burst.set_burst(0.35, 0.2);
    let combined = FaultPlan::generate(
        g,
        &FaultConfig {
            crash_rate: 0.05,
            sleep_rate: 0.1,
            jammers: 2,
            burst: Some(radio_sim::BurstParams {
                p_bad: 0.25,
                p_good: 0.3,
            }),
            exempt: Some(0),
            ..FaultConfig::default()
        },
        4242,
    );
    vec![
        ("crash", crash),
        ("sleep", sleep),
        ("jam", jam),
        ("burst", burst),
        ("combined", combined),
    ]
}

type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

fn protocol_factories(p: f64) -> Vec<(&'static str, ProtocolFactory)> {
    vec![
        (
            "eg",
            Box::new(move || Box::new(EgDistributed::new(p)) as Box<dyn Protocol>),
        ),
        (
            "decay",
            Box::new(|| Box::new(Decay::new()) as Box<dyn Protocol>),
        ),
        (
            "restartable-eg",
            Box::new(move || {
                Box::new(Restartable::auto(EgDistributed::new(p))) as Box<dyn Protocol>
            }),
        ),
    ]
}

/// Batch lane `l` must equal the scalar faulty run seeded with
/// `child_rng(master, l)` on both scalar kernels, for every fault type and
/// every protocol — and the two scalar kernels must leave the caller's RNG
/// in the same state.
#[test]
fn batch_lanes_match_scalar_kernels_under_faults() {
    let n = 128;
    let p = 0.1;
    let g = sample_gnp(n, p, &mut Xoshiro256pp::new(2026));
    let master = 555u64;
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);

    for (case, plan) in fault_cases(&g) {
        // Exercise the loss path together with the combined plan so the
        // burst-before-loss coin ordering is covered end to end.
        let cfg = if case == "combined" {
            cfg.with_loss(0.2)
        } else {
            cfg
        };
        for (proto_name, make) in protocol_factories(p) {
            let mut batch_proto = make();
            let lanes = run_protocol_batch_faulty(
                &g,
                0,
                batch_proto.as_mut(),
                cfg,
                &plan,
                master,
                MAX_LANES,
            );
            for lane in [0usize, 1, 7, MAX_LANES - 1] {
                let mut streams = Vec::new();
                for kernel in [EngineKernel::Sparse, EngineKernel::Dense] {
                    let mut rng = child_rng(master, lane as u64);
                    let mut proto = make();
                    let mut scalar = run_protocol_faulty(
                        &g,
                        0,
                        proto.as_mut(),
                        cfg.with_kernel(kernel),
                        &plan,
                        &mut rng,
                    );
                    scalar.kernel = KernelUsed::Batch;
                    assert_eq!(
                        scalar, lanes[lane],
                        "{case}/{proto_name}: lane {lane} diverged from scalar {kernel:?}"
                    );
                    streams.push(rng.next());
                }
                assert_eq!(
                    streams[0], streams[1],
                    "{case}/{proto_name}: residual RNG stream differs between kernels"
                );
            }
        }
    }
}

/// The lane-sweep engine pins the graceful-degradation summary per lane:
/// under a generated crash/sleep/jam/burst plan, every lane of a
/// provider-backed lane-plane run (lanes 7 and 64, shards 1 and 4) must
/// carry exactly the [`radio_sim::FaultSummary`] — coverage counters and
/// the DSU-based residual-uninformed count — of the scalar explicit run on
/// `child_rng(master, lane)`.
#[test]
fn lane_sweep_fault_summaries_match_scalar_runs() {
    let n = 192;
    let p = 14.0 / n as f64;
    let imp = ImplicitGnp::new(n, p, 8086);
    let g = imp.materialize();
    let master = 77_077u64;
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);

    for (case, plan) in fault_cases(&g) {
        for lanes in [7usize, 64] {
            for shards in [1usize, 4] {
                let mut proto = EgDistributed::new(p);
                let outcome = RunSpec::on_provider(&imp, shards, 0)
                    .with_config(cfg)
                    .with_lanes(lanes)
                    .with_faults(&plan)
                    .with_master_seed(master)
                    .run(&mut proto);
                assert_eq!(outcome.lanes.len(), lanes, "{case}");
                for (lane, lane_result) in outcome.lanes.iter().enumerate() {
                    let lane_summary = lane_result
                        .faults
                        .expect("faulted lane-plane run carries a summary");
                    let mut rng = child_rng(master, lane as u64);
                    let mut scalar_proto = EgDistributed::new(p);
                    let scalar = RunSpec::on_graph(&g, 0)
                        .with_config(cfg)
                        .with_faults(&plan)
                        .run_with_rng(&mut scalar_proto, &mut rng)
                        .into_single();
                    let scalar_summary =
                        scalar.faults.expect("scalar faulty run carries a summary");
                    assert_eq!(
                        lane_summary, scalar_summary,
                        "{case} lanes={lanes} shards={shards} lane {lane}: \
                         FaultSummary diverged from the scalar run"
                    );
                    assert_eq!(
                        lane_result.informed, scalar.informed,
                        "{case} lanes={lanes} shards={shards} lane {lane}: coverage"
                    );
                    assert_eq!(
                        lane_result.last_delivery_round, scalar.last_delivery_round,
                        "{case} lanes={lanes} shards={shards} lane {lane}"
                    );
                }
            }
        }
    }
}

/// The graceful-degradation summary itself is kernel-independent: the
/// coverage, live-reachable count, and residual-uninformed count agree
/// between sparse and dense replays of a generated adversarial plan.
#[test]
fn fault_summary_is_kernel_independent() {
    let n = 256;
    let p = 0.08;
    let g = sample_gnp(n, p, &mut Xoshiro256pp::new(7));
    let plan = FaultPlan::generate(
        &g,
        &FaultConfig {
            crash_rate: 0.2,
            placement: radio_sim::Placement::HighDegree,
            exempt: Some(0),
            ..FaultConfig::default()
        },
        9,
    );
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::SummaryOnly);
    let run = |kernel| {
        let mut proto = EgDistributed::new(p);
        let mut rng = Xoshiro256pp::new(77);
        run_protocol_faulty(&g, 0, &mut proto, cfg.with_kernel(kernel), &plan, &mut rng)
    };
    let sparse = run(EngineKernel::Sparse);
    let dense = run(EngineKernel::Dense);
    let s = sparse.faults.expect("faulty run carries a summary");
    assert_eq!(sparse.faults, dense.faults);
    assert_eq!(sparse.fault_events, dense.fault_events);
    assert_eq!(sparse.last_delivery_round, dense.last_delivery_round);
    assert!(s.crashed > 0, "adversarial plan crashed nobody");
    assert!(s.live_reachable <= s.live);
}
