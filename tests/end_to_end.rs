//! End-to-end integration: sample graph → build schedule / run protocol →
//! everyone informed, with the measured rounds in the theorems' ballparks.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::components::is_connected;

/// Samples a connected G(n,p) (retries a few times).
fn connected_gnp(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    for _ in 0..50 {
        let g = sample_gnp(n, p, rng);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected sample at n = {n}, p = {p}");
}

#[test]
fn centralized_pipeline_sparse() {
    let n = 5_000;
    let p = 3.0 * (n as f64).ln() / n as f64;
    let mut rng = Xoshiro256pp::new(1);
    let g = connected_gnp(n, p, &mut rng);

    let built = build_eg_schedule(&g, 17, CentralizedParams::default(), &mut rng);
    assert!(built.completed);

    // Replay through the independent simulator.
    let replay = run_schedule(
        &g,
        17,
        &built.schedule,
        TransmitterPolicy::InformedOnly,
        TraceLevel::PerRound,
    );
    assert!(replay.completed);
    assert_eq!(replay.informed, n);

    // Rounds within a constant multiple of the bound.
    let bound = theory::centralized_bound(n, g.average_degree());
    assert!(
        (built.len() as f64) < 8.0 * bound,
        "rounds {} vs bound {bound}",
        built.len()
    );
}

#[test]
fn centralized_pipeline_dense() {
    let n = 1_000;
    let mut rng = Xoshiro256pp::new(2);
    let g = connected_gnp(n, 0.2, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    assert!(built.completed);
    let replay = run_schedule(
        &g,
        0,
        &built.schedule,
        TransmitterPolicy::InformedOnly,
        TraceLevel::SummaryOnly,
    );
    assert!(replay.completed);
}

#[test]
fn distributed_pipeline_multiple_sources() {
    let n = 3_000;
    let p = (n as f64).ln().powi(2) / n as f64;
    let mut rng = Xoshiro256pp::new(3);
    let g = connected_gnp(n, p, &mut rng);
    for source in [0, 1_234, (n - 1) as NodeId] {
        let mut proto = EgDistributed::new(p);
        let r = run_protocol(&g, source, &mut proto, RunConfig::for_graph(n), &mut rng);
        assert!(r.completed, "source {source}: informed {}/{n}", r.informed);
        let ln_n = (n as f64).ln();
        assert!(
            (r.rounds as f64) < 30.0 * ln_n,
            "rounds {} ≫ ln n = {ln_n:.1}",
            r.rounds
        );
    }
}

#[test]
fn centralized_beats_distributed_knowledge_gap() {
    // Topology knowledge must not hurt: the centralized schedule should be
    // at most as long as (typically much shorter than) the distributed run.
    let n = 4_000;
    let p = 40.0 / n as f64;
    let mut rng = Xoshiro256pp::new(4);
    let g = connected_gnp(n, p, &mut rng);

    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    let mut proto = EgDistributed::new(p);
    let dist = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), &mut rng);

    assert!(built.completed && dist.completed);
    assert!(
        (built.len() as u32) <= dist.rounds,
        "centralized {} > distributed {}",
        built.len(),
        dist.rounds
    );
}

#[test]
fn gnm_model_also_works() {
    // The paper notes results transfer to the Erdős–Rényi G(n, m) model.
    use radio_graph::gnm::sample_gnm;
    let n = 2_000;
    let m = n * 15;
    let mut rng = Xoshiro256pp::new(5);
    let g = sample_gnm(n, m, &mut rng);
    if !is_connected(&g) {
        return; // rare; sampling again would just repeat the same code path
    }
    let p_equiv = 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0));
    let mut proto = EgDistributed::new(p_equiv);
    let r = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), &mut rng);
    assert!(r.completed);
}

#[test]
fn geometric_graph_extension() {
    // RGG: spatially correlated topology. The distributed protocol's
    // parameters come from the realized degree; completion demonstrates the
    // machinery generalizes beyond G(n,p) (no round-count claim).
    use radio_graph::geometric::{radius_for_average_degree, sample_rgg};
    let n = 2_000;
    let mut rng = Xoshiro256pp::new(6);
    let gg = sample_rgg(n, radius_for_average_degree(n, 25.0), &mut rng);
    if !is_connected(&gg.graph) {
        return;
    }
    let p_equiv = gg.graph.average_degree() / n as f64;
    let mut proto = EgDistributed::new(p_equiv);
    // RGG diameter is Θ(1/r) ≫ ln n; give the run a diameter-scaled budget.
    let cfg = RunConfig::for_graph(n).with_max_rounds(20_000);
    let r = run_protocol(&gg.graph, 0, &mut proto, cfg, &mut rng);
    assert!(r.completed);
}
