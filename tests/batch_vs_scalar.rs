//! Differential suite for the lane-batched Monte-Carlo runner: every lane
//! of `run_protocol_batch(graph, ..., master, lanes)` must be bit-identical
//! to a scalar `run_protocol` on the RNG stream `child_rng(master, lane)` —
//! completion flag, completion round, final informed count, and the full
//! per-round trace (transmitters, newly informed, collisions, reached,
//! informed-after) — for each kernel selection and with and without loss.
//!
//! The scalar side's kernel selection is part of the sweep because the
//! contract is transitive: scalar runs are themselves kernel-invariant
//! (`props_cross_crate`), so the batch runner must match all of them.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::{child_rng, derive_seed};
use radio_sim::{run_protocol, run_protocol_batch, EngineKernel, KernelUsed, Protocol};

/// Compare everything except the informational `kernel` field (scalar runs
/// report sparse/dense/mixed, lanes report batch).
fn strip_kernel(mut r: RunResult) -> RunResult {
    r.kernel = KernelUsed::Sparse;
    r
}

fn assert_batch_matches_scalar<P, F>(
    g: &Graph,
    source: NodeId,
    factory: F,
    cfg: RunConfig,
    master: u64,
    lanes: usize,
    ctx: &str,
) where
    P: Protocol,
    F: Fn() -> P,
{
    let mut batch_proto = factory();
    let batch = run_protocol_batch(g, source, &mut batch_proto, cfg, master, lanes);
    assert_eq!(batch.len(), lanes, "{ctx}");
    for (lane, got) in batch.into_iter().enumerate() {
        let mut rng = child_rng(master, lane as u64);
        let mut proto = factory();
        let want = run_protocol(g, source, &mut proto, cfg, &mut rng);
        // A 1-lane "batch" is planned onto the scalar round engine by the
        // exec planner; the informational kernel tag follows the engine.
        if lanes > 1 {
            assert_eq!(got.kernel, KernelUsed::Batch, "{ctx}, lane {lane}");
        }
        assert_eq!(strip_kernel(got), strip_kernel(want), "{ctx}, lane {lane}");
    }
}

/// The tentpole sweep from the issue: kernels sparse/dense/auto × loss
/// ∈ {0, 0.2}, full 64-lane batches, several protocols with different coin
/// patterns (EG draws one coin per decision; Decay's draw count depends on
/// the round; ConstantProb is the paper's 1/d baseline).
#[test]
fn batch_matches_scalar_across_kernels_and_loss() {
    let mut grng = Xoshiro256pp::new(0xBA7C);
    let n = 192;
    let p = 0.06;
    let g = sample_gnp(n, p, &mut grng);
    // Cap the budget so incomplete lanes (budget exhaustion) are exercised
    // without making the scalar side rerun 1300+ rounds per lane.
    let base = RunConfig::for_graph(n).with_max_rounds(60);

    let mut case = 0u64;
    for loss in [0.0, 0.2] {
        for kernel in [
            EngineKernel::Sparse,
            EngineKernel::Dense,
            EngineKernel::Auto,
        ] {
            let cfg = base.with_loss(loss).with_kernel(kernel);
            let master = derive_seed(0x5EED, case);
            case += 1;
            let ctx = format!("loss {loss}, {kernel:?}");
            assert_batch_matches_scalar(&g, 0, || EgDistributed::new(p), cfg, master, 64, &ctx);
            assert_batch_matches_scalar(&g, 5, Decay::new, cfg, master ^ 1, 64, &ctx);
            assert_batch_matches_scalar(
                &g,
                11,
                || ConstantProb::new(0.2),
                cfg,
                master ^ 2,
                64,
                &ctx,
            );
        }
    }
}

/// Partial batches (lanes < 64) match the same prefix of scalar streams.
#[test]
fn partial_batches_match_scalar_prefix() {
    let mut grng = Xoshiro256pp::new(0x9A7);
    let g = sample_gnp(128, 0.08, &mut grng);
    let cfg = RunConfig::for_graph(128).with_max_rounds(50).with_loss(0.2);
    for lanes in [1usize, 7, 33] {
        assert_batch_matches_scalar(
            &g,
            0,
            || EgDistributed::new(0.08),
            cfg,
            0xAB,
            lanes,
            &format!("{lanes} lanes"),
        );
    }
}

/// Disconnected graphs: lanes exhaust the budget without completing, and
/// the per-lane informed counts still match the scalar runs.
#[test]
fn incomplete_lanes_match_scalar() {
    let mut grng = Xoshiro256pp::new(0xD15C);
    // Far below the connectivity threshold: isolated vertices guaranteed.
    let g = sample_gnp(150, 0.015, &mut grng);
    let cfg = RunConfig::for_graph(150).with_max_rounds(40);
    assert_batch_matches_scalar(
        &g,
        0,
        || EgDistributed::new(0.015),
        cfg,
        7,
        64,
        "disconnected",
    );
}
