//! Cross-crate protocol behaviour: every distributed protocol terminates
//! correctly on the graph families it is supposed to handle, and the
//! baselines fail exactly where the paper says they must.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::distributed::run_push_gossip;
use radio_broadcast::prelude::*;
use radio_graph::components::is_connected;
use radio_sim::Protocol;

fn connected_gnp(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    for _ in 0..50 {
        let g = sample_gnp(n, p, rng);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected sample");
}

#[test]
fn all_radio_protocols_complete_on_moderate_graph() {
    let n = 1_500;
    let d = 25.0;
    let p = d / n as f64;
    let mut rng = Xoshiro256pp::new(10);
    let g = connected_gnp(n, p, &mut rng);

    let mut protocols: Vec<Box<dyn Protocol>> = vec![
        Box::new(EgDistributed::new(p)),
        Box::new(EgDistributed::with_variant(p, EgVariant::Strict)),
        Box::new(Decay::new()),
        Box::new(ConstantProb::new(1.0 / d)),
    ];
    for proto in protocols.iter_mut() {
        let r = run_protocol(&g, 3, proto.as_mut(), RunConfig::for_graph(n), &mut rng);
        assert!(
            r.completed,
            "{} failed: informed {}/{n}",
            proto.name(),
            r.informed
        );
    }
}

#[test]
fn round_robin_completes_with_linear_budget() {
    let n = 200;
    let mut rng = Xoshiro256pp::new(11);
    let g = connected_gnp(n, 0.08, &mut rng);
    let mut proto = RoundRobin::default();
    let cfg = RunConfig::for_graph(n).with_max_rounds((n * n) as u32);
    let r = run_protocol(&g, 0, &mut proto, cfg, &mut rng);
    assert!(r.completed);
}

#[test]
fn selective_family_broadcast_on_bounded_degree() {
    let n = 300;
    let mut rng = Xoshiro256pp::new(12);
    let g = connected_gnp(n, 6.0 * (n as f64).ln() / n as f64, &mut rng);
    let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
    let mut proto = SelectiveBroadcast::for_degree_bound(n, max_deg + 1);
    let period = proto.family().len() as u32;
    let cfg = RunConfig::for_graph(n).with_max_rounds(period * 64);
    let r = run_protocol(&g, 0, &mut proto, cfg, &mut rng);
    assert!(r.completed, "informed {}/{n}", r.informed);
}

#[test]
fn flooding_fails_on_dense_but_gossip_succeeds() {
    // The same dense instance separates the radio model (flooding jams)
    // from the single-port model (gossip sails through).
    let n = 800;
    let mut rng = Xoshiro256pp::new(13);
    let g = connected_gnp(n, 0.15, &mut rng);

    let cfg = RunConfig::for_graph(n).with_max_rounds(400);
    let flood = run_protocol(&g, 0, &mut Flooding, cfg, &mut rng);
    assert!(!flood.completed, "flooding should jam on dense graphs");

    let gossip = run_push_gossip(&g, 0, 400, TraceLevel::SummaryOnly, &mut rng);
    assert!(gossip.completed);
}

#[test]
fn eg_handles_near_threshold_density() {
    // δ ln n / n with δ = 2 — the sparse boundary of the paper's regime
    // (conditioned on connectivity).
    let n = 4_000;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let mut rng = Xoshiro256pp::new(14);
    let g = connected_gnp(n, p, &mut rng);
    let mut proto = EgDistributed::new(p);
    let r = run_protocol(&g, 0, &mut proto, RunConfig::for_graph(n), &mut rng);
    assert!(r.completed, "informed {}/{n}", r.informed);
}

#[test]
fn probability_profile_equals_constant_protocol() {
    // A constant profile and ConstantProb are the same protocol; with the
    // same seed and graph they must produce identical runs.
    let n = 1_000;
    let d = 20.0;
    let p = d / n as f64;
    let mut rng = Xoshiro256pp::new(15);
    let g = connected_gnp(n, p, &mut rng);

    let mut rng_a = Xoshiro256pp::new(500);
    let mut prof = ProbabilityProfile::constant(1.0 / d);
    let a = run_protocol(&g, 0, &mut prof, RunConfig::for_graph(n), &mut rng_a);

    let mut rng_b = Xoshiro256pp::new(500);
    let mut cp = ConstantProb::new(1.0 / d);
    let b = run_protocol(&g, 0, &mut cp, RunConfig::for_graph(n), &mut rng_b);

    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn energy_accounting_is_consistent() {
    let n = 1_000;
    let p = 25.0 / n as f64;
    let mut rng = Xoshiro256pp::new(16);
    let g = connected_gnp(n, p, &mut rng);
    let cfg = RunConfig::for_graph(n).with_trace(TraceLevel::PerRound);
    let mut proto = EgDistributed::new(p);
    let r = run_protocol(&g, 0, &mut proto, cfg, &mut rng);
    assert!(r.completed);
    // Trace internal consistency: informed_after is monotone and ends at n.
    let mut prev = 1;
    for rec in &r.trace {
        assert!(rec.informed_after >= prev);
        assert_eq!(rec.informed_after - prev, rec.newly_informed);
        prev = rec.informed_after;
    }
    assert_eq!(prev, n);
}
