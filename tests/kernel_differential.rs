//! Tiled-kernel differential suite: thread-count invariance and
//! cross-kernel bit-identity.
//!
//! The tentpole contract of the tiled SIMD kernel: lane `l` of a tiled
//! run is **bit-identical** to the scalar run on `child_rng(master, l)`
//! and to lane `l` of the batch runner — same traces, fault events,
//! graceful-degradation summaries — and the whole result vector is
//! identical for every intra-round worker count, on plain, lossy, and
//! faulted configurations.
//!
//! Worker counts are passed directly (1, 3, and 8 — what
//! `RADIO_THREADS=1/3/8` would give the CLI) rather than via the
//! environment variable, which only `runner.rs`'s own test may set:
//! env vars are process-global and the test harness runs concurrently.
//!
//! The only [`RunResult`] fields allowed to differ between kernels are
//! the informational `kernel` and `threads` tags; every comparison
//! normalizes them first.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::distributed::{Decay, EgDistributed};
use radio_graph::{child_rng, GraphProvider, ImplicitGnp, Xoshiro256pp};
use radio_sim::{
    run_protocol, run_protocol_batch, run_protocol_batch_faulty, run_protocol_faulty,
    run_protocol_tiled_with_threads, EngineKernel, FaultConfig, FaultPlan, KernelUsed, Protocol,
    RunConfig, RunResult,
};

const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

/// Connectivity-regime edge probability, matching the Theorem 7 sweeps.
fn threshold_p(n: usize) -> f64 {
    (2.5 * (n as f64).ln() / n as f64).min(1.0)
}

fn normalized(mut r: RunResult) -> RunResult {
    r.kernel = KernelUsed::Tiled;
    r.threads = 1;
    r
}

type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

fn protocol_factories(p: f64) -> Vec<(&'static str, ProtocolFactory)> {
    vec![
        (
            "eg",
            Box::new(move || Box::new(EgDistributed::new(p)) as Box<dyn Protocol>),
        ),
        (
            "decay",
            Box::new(|| Box::new(Decay::new()) as Box<dyn Protocol>),
        ),
    ]
}

/// Crash+sleep+jam+burst plan, generated adversarially with the source
/// exempted (same shape as the backend differential suite).
fn combined_plan(g: &radio_graph::Graph) -> FaultPlan {
    FaultPlan::generate(
        g,
        &FaultConfig {
            crash_rate: 0.05,
            sleep_rate: 0.1,
            jammers: 2,
            burst: Some(radio_sim::BurstParams {
                p_bad: 0.25,
                p_good: 0.3,
            }),
            exempt: Some(0),
            ..FaultConfig::default()
        },
        4242,
    )
}

/// Plain, lossy, and faulted tiled runs are byte-identical for every
/// worker count — full traces, fault events, and summaries included.
#[test]
fn tiled_thread_counts_bit_identical() {
    let n = 512;
    let p = threshold_p(n);
    let imp = ImplicitGnp::new(n, p, 20060501);
    let g = imp.materialize();
    let plan = combined_plan(&g);
    let lanes = 96; // two lane groups: exercises the 16-word row path
    let master = 0xD1FFu64;
    for (case, loss, faulted) in [(0usize, 0.0, false), (1, 0.25, false), (2, 0.2, true)] {
        let cfg = RunConfig::for_graph(n)
            .with_loss(loss)
            .with_kernel(EngineKernel::Tiled);
        let mut want: Option<Vec<RunResult>> = None;
        for threads in THREAD_COUNTS {
            let mut proto = EgDistributed::new(p);
            let got: Vec<RunResult> = run_protocol_tiled_with_threads(
                &g,
                0,
                &mut proto,
                cfg,
                faulted.then_some(&plan),
                master,
                lanes,
                threads,
            )
            .into_iter()
            .map(normalized)
            .collect();
            if faulted {
                assert!(
                    got.iter().all(|r| r.faults.is_some()),
                    "faulty runs must carry a degradation summary"
                );
            }
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(
                    *w, got,
                    "case {case}: tiled results changed with {threads} worker threads"
                ),
            }
        }
    }
}

/// Tiled lane `l` equals the scalar run on `child_rng(master, l)` and
/// lane `l` of the batch runner, for plain, lossy, and faulted
/// configurations.  The scalar runs also pin the residual RNG stream:
/// sparse, dense, and tiled scalar kernels must leave each stream in
/// the same state.
#[test]
fn tiled_lanes_match_scalar_and_batch() {
    let n = 256;
    let p = threshold_p(n);
    let imp = ImplicitGnp::new(n, p, 31337);
    let g = imp.materialize();
    let plan = combined_plan(&g);
    let lanes = 24;
    let master = 0xBEEFu64;
    for (case, loss, faulted) in [(0usize, 0.0, false), (1, 0.25, false), (2, 0.2, true)] {
        let cfg = RunConfig::for_graph(n).with_loss(loss);
        for (proto_name, make) in protocol_factories(p) {
            let tiled_cfg = cfg.with_kernel(EngineKernel::Tiled);
            let mut proto = make();
            let tiled = run_protocol_tiled_with_threads(
                &g,
                0,
                proto.as_mut(),
                tiled_cfg,
                faulted.then_some(&plan),
                master,
                lanes,
                3,
            );
            assert!(tiled.iter().all(|r| r.kernel == KernelUsed::Tiled));

            let mut proto = make();
            let batch = if faulted {
                run_protocol_batch_faulty(&g, 0, proto.as_mut(), cfg, &plan, master, lanes)
            } else {
                run_protocol_batch(&g, 0, proto.as_mut(), cfg, master, lanes)
            };

            for l in 0..lanes {
                // Scalar reference: identical result AND residual stream
                // across the sparse, dense, and tiled scalar kernels.
                let mut want: Option<(RunResult, u64)> = None;
                for kernel in [
                    EngineKernel::Sparse,
                    EngineKernel::Dense,
                    EngineKernel::Tiled,
                ] {
                    let mut rng = child_rng(master, l as u64);
                    let mut proto = make();
                    let r = if faulted {
                        run_protocol_faulty(
                            &g,
                            0,
                            proto.as_mut(),
                            cfg.with_kernel(kernel),
                            &plan,
                            &mut rng,
                        )
                    } else {
                        run_protocol(&g, 0, proto.as_mut(), cfg.with_kernel(kernel), &mut rng)
                    };
                    let got = (normalized(r), rng.next());
                    match &want {
                        None => want = Some(got),
                        Some(w) => assert_eq!(
                            *w, got,
                            "case {case} {proto_name} lane {l}: scalar kernels disagree"
                        ),
                    }
                }
                let (want_result, _residual) = want.unwrap();
                assert_eq!(
                    normalized(tiled[l].clone()),
                    want_result,
                    "case {case} {proto_name} lane {l}: tiled diverged from scalar"
                );
                assert_eq!(
                    normalized(batch[l].clone()),
                    want_result,
                    "case {case} {proto_name} lane {l}: batch diverged from scalar"
                );
            }
        }
    }
}

/// The scalar engine accepts `EngineKernel::Tiled` (dense-layout rounds
/// counted as tiled) and reports it, with results identical to the
/// other kernels.
#[test]
fn scalar_engine_reports_tiled_kernel() {
    let n = 300;
    let p = threshold_p(n);
    let g = ImplicitGnp::new(n, p, 9).materialize();
    let cfg = RunConfig::for_graph(n).with_kernel(EngineKernel::Tiled);
    let mut rng = Xoshiro256pp::new(77);
    let mut proto = EgDistributed::new(p);
    let r = run_protocol(&g, 0, &mut proto, cfg, &mut rng);
    assert_eq!(r.kernel, KernelUsed::Tiled);
    assert_eq!(r.threads, 1, "scalar kernels are single-threaded");
}
