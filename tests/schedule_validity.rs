//! Validity of centralized schedules: radio semantics honored round by
//! round, phase invariants, and exact agreement between the builder's
//! internal simulation and an independent replay.

// The deprecated run_protocol_* shims are pinned here against the RunSpec
// planner paths until the shims are removed.
#![allow(deprecated)]
use radio_broadcast::prelude::*;
use radio_graph::components::is_connected;
use radio_sim::BroadcastState;
use radio_sim::RoundEngine;

fn connected_gnp(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    for _ in 0..50 {
        let g = sample_gnp(n, p, rng);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected sample");
}

/// Replays a schedule manually, asserting radio semantics at every step:
/// only informed nodes transmit, and every newly informed node had exactly
/// one transmitting neighbor.
fn validate_schedule(g: &Graph, source: NodeId, schedule: &Schedule) -> BroadcastState {
    let mut state = BroadcastState::new(g.n(), source);
    let mut engine = RoundEngine::new(g);
    for (t, set) in schedule.iter().enumerate() {
        // Pre-round informed snapshot.
        let before: Vec<bool> = (0..g.n() as NodeId).map(|v| state.is_informed(v)).collect();
        // The builder only schedules informed nodes.
        for &x in set {
            assert!(
                before[x as usize],
                "round {}: scheduled uninformed node {x}",
                t + 1
            );
        }
        engine.execute_round(&mut state, set, (t + 1) as u32);
        // Check reception rule against the snapshot.
        for v in 0..g.n() as NodeId {
            if !before[v as usize] && state.is_informed(v) {
                let transmitting_neighbors =
                    g.neighbors(v).iter().filter(|&&w| set.contains(&w)).count();
                assert_eq!(
                    transmitting_neighbors,
                    1,
                    "round {}: node {v} informed with {transmitting_neighbors} transmitters",
                    t + 1
                );
            }
        }
    }
    state
}

#[test]
fn eg_schedule_respects_radio_semantics() {
    let mut rng = Xoshiro256pp::new(21);
    for &(n, d) in &[(800usize, 20.0f64), (2_000, 50.0), (500, 100.0)] {
        let g = connected_gnp(n, d / n as f64, &mut rng);
        let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
        assert!(built.completed, "n = {n}, d = {d}");
        let state = validate_schedule(&g, 0, &built.schedule);
        assert!(state.is_complete());
        assert_eq!(state.informed_count(), built.informed);
    }
}

#[test]
fn greedy_schedule_respects_radio_semantics() {
    let mut rng = Xoshiro256pp::new(22);
    let g = connected_gnp(1_000, 0.03, &mut rng);
    let built = greedy_cover_schedule(&g, 0, 1_000, &mut rng);
    assert!(built.completed);
    let state = validate_schedule(&g, 0, &built.schedule);
    assert!(state.is_complete());
}

#[test]
fn phase_ordering_is_monotone() {
    // Phases appear in algorithm order: flood* seed? fraction* cover? backprop*.
    let mut rng = Xoshiro256pp::new(23);
    let g = connected_gnp(3_000, 0.015, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    let rank = |p: &Phase| match p {
        Phase::ParityFlood => 0,
        Phase::Seed => 1,
        Phase::Fraction => 2,
        Phase::Cover => 3,
        Phase::BackProp => 4,
    };
    let ranks: Vec<u8> = built.phases.iter().map(rank).collect();
    assert!(
        ranks.windows(2).all(|w| w[0] <= w[1]),
        "phases out of order: {:?}",
        built.phases
    );
}

#[test]
fn every_round_makes_progress_or_is_flood() {
    // Cover rounds must strictly shrink the uninformed set (greedy never
    // returns a useless set while uninformed nodes have informed
    // neighbors).
    let mut rng = Xoshiro256pp::new(24);
    let g = connected_gnp(1_500, 0.02, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    let replay = run_schedule(
        &g,
        0,
        &built.schedule,
        TransmitterPolicy::InformedOnly,
        TraceLevel::PerRound,
    );
    for (rec, phase) in replay.trace.iter().zip(&built.phases) {
        if matches!(phase, Phase::Cover | Phase::BackProp) {
            assert!(
                rec.newly_informed > 0,
                "cover round {} informed nobody",
                rec.round
            );
        }
    }
}

#[test]
fn seed_round_size_is_theta_n_over_d() {
    let mut rng = Xoshiro256pp::new(25);
    let n = 4_000;
    let d = 50.0;
    let g = connected_gnp(n, d / n as f64, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    if let Some(idx) = built.phases.iter().position(|p| *p == Phase::Seed) {
        let seed_size = built.schedule.round(idx).len();
        let target = n as f64 / g.average_degree();
        assert!(
            (seed_size as f64) <= 2.0 * target + 2.0 && (seed_size as f64) >= 0.2 * target,
            "seed size {seed_size} vs n/d = {target:.0}"
        );
    }
}

#[test]
fn schedule_total_energy_is_subquadratic() {
    // The paper's schedule transmits O(n/d · ln d + n) slots overall —
    // check it is far below the n·rounds worst case.
    let mut rng = Xoshiro256pp::new(26);
    let n = 4_000;
    let g = connected_gnp(n, 0.02, &mut rng);
    let built = build_eg_schedule(&g, 0, CentralizedParams::default(), &mut rng);
    let energy = built.schedule.total_transmissions();
    assert!(
        energy < n * built.len() / 4,
        "energy {energy} too close to flooding cost {}",
        n * built.len()
    );
}
